#include "sparql/engine.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdf/vocab.h"
#include "sparql/parser.h"

namespace lodviz::sparql {

namespace {

/// Registry handles for the engine's hot counters, looked up once.
struct SparqlMetrics {
  obs::Counter& queries;
  obs::Counter& intermediate_rows;
  obs::Counter& rows_out;
  obs::Counter& op_join_rows;
  obs::Counter& op_filter_dropped;
  obs::Counter& op_optional_rows;
  obs::Counter& op_union_rows;
  obs::Histogram& execute_us;

  static SparqlMetrics& Get() {
    obs::MetricRegistry& r = obs::MetricRegistry::Global();
    static SparqlMetrics m{r.GetCounter("sparql.queries"),
                           r.GetCounter("sparql.intermediate_rows"),
                           r.GetCounter("sparql.rows_out"),
                           r.GetCounter("sparql.op.join_rows"),
                           r.GetCounter("sparql.op.filter_dropped"),
                           r.GetCounter("sparql.op.optional_rows"),
                           r.GetCounter("sparql.op.union_rows"),
                           r.GetHistogram("sparql.execute_us")};
    return m;
  }
};

using rdf::kInvalidTermId;
using rdf::Term;
using rdf::TermId;

/// A (partial) solution: variable name -> bound term id.
using Binding = std::unordered_map<std::string, TermId>;

/// Collects variables of a pattern in order of first appearance.
void CollectVars(const GraphPattern& group, std::vector<std::string>* out,
                 std::set<std::string>* seen) {
  auto add = [&](const NodeOrVar& n) {
    if (IsVar(n) && seen->insert(AsVar(n).name).second) {
      out->push_back(AsVar(n).name);
    }
  };
  for (const auto& t : group.triples) {
    add(t.s);
    add(t.p);
    add(t.o);
  }
  for (const auto& u : group.union_branches) CollectVars(u, out, seen);
  for (const auto& o : group.optionals) CollectVars(o, out, seen);
}

/// Expression evaluation value: a term, or an evaluation error that makes
/// the enclosing FILTER reject the row (SPARQL error semantics).
struct EvalContext {
  const rdf::Dictionary* dict;
  const Binding* binding;
};

Result<Term> EvalExpr(const Expr& e, const EvalContext& ctx);

Result<bool> EffectiveBool(const Term& t) {
  if (!t.is_literal()) {
    return Status::InvalidArgument("EBV of non-literal");
  }
  if (t.datatype == rdf::vocab::kXsdBoolean) return t.lexical == "true";
  if (t.IsNumericLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(double v, t.AsDouble());
    return v != 0.0;
  }
  return !t.lexical.empty();
}

Term BoolTerm(bool b) { return Term::BoolLiteral(b); }

/// Three-way comparison following lodviz's pragmatic SPARQL ordering:
/// numeric if both numeric, temporal if both temporal, else lexical form.
Result<int> CompareTerms(const Term& a, const Term& b) {
  if (a.IsNumericLiteral() && b.IsNumericLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(double x, a.AsDouble());
    LODVIZ_ASSIGN_OR_RETURN(double y, b.AsDouble());
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.IsTemporalLiteral() && b.IsTemporalLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(int64_t x, a.AsEpochSeconds());
    LODVIZ_ASSIGN_OR_RETURN(int64_t y, b.AsEpochSeconds());
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  int c = a.lexical.compare(b.lexical);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

Result<Term> EvalBinary(const Expr& e, const EvalContext& ctx) {
  if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
    LODVIZ_ASSIGN_OR_RETURN(Term lhs, EvalExpr(*e.args[0], ctx));
    LODVIZ_ASSIGN_OR_RETURN(bool l, EffectiveBool(lhs));
    if (e.bin_op == BinOp::kAnd && !l) return BoolTerm(false);
    if (e.bin_op == BinOp::kOr && l) return BoolTerm(true);
    LODVIZ_ASSIGN_OR_RETURN(Term rhs, EvalExpr(*e.args[1], ctx));
    LODVIZ_ASSIGN_OR_RETURN(bool r, EffectiveBool(rhs));
    return BoolTerm(r);
  }

  LODVIZ_ASSIGN_OR_RETURN(Term lhs, EvalExpr(*e.args[0], ctx));
  LODVIZ_ASSIGN_OR_RETURN(Term rhs, EvalExpr(*e.args[1], ctx));

  switch (e.bin_op) {
    case BinOp::kEq:
      if (lhs.IsNumericLiteral() && rhs.IsNumericLiteral()) {
        LODVIZ_ASSIGN_OR_RETURN(int c, CompareTerms(lhs, rhs));
        return BoolTerm(c == 0);
      }
      return BoolTerm(lhs == rhs);
    case BinOp::kNe:
      if (lhs.IsNumericLiteral() && rhs.IsNumericLiteral()) {
        LODVIZ_ASSIGN_OR_RETURN(int c, CompareTerms(lhs, rhs));
        return BoolTerm(c != 0);
      }
      return BoolTerm(!(lhs == rhs));
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      LODVIZ_ASSIGN_OR_RETURN(int c, CompareTerms(lhs, rhs));
      switch (e.bin_op) {
        case BinOp::kLt:
          return BoolTerm(c < 0);
        case BinOp::kLe:
          return BoolTerm(c <= 0);
        case BinOp::kGt:
          return BoolTerm(c > 0);
        default:
          return BoolTerm(c >= 0);
      }
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      LODVIZ_ASSIGN_OR_RETURN(double x, lhs.AsDouble());
      LODVIZ_ASSIGN_OR_RETURN(double y, rhs.AsDouble());
      double v = 0;
      switch (e.bin_op) {
        case BinOp::kAdd:
          v = x + y;
          break;
        case BinOp::kSub:
          v = x - y;
          break;
        case BinOp::kMul:
          v = x * y;
          break;
        default:
          if (y == 0.0) return Status::InvalidArgument("division by zero");
          v = x / y;
      }
      return Term::DoubleLiteral(v);
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<Term> EvalFunc(const Expr& e, const EvalContext& ctx) {
  auto arg_term = [&](size_t i) -> Result<Term> {
    return EvalExpr(*e.args[i], ctx);
  };
  switch (e.func) {
    case FuncOp::kBound: {
      if (e.args.size() != 1 || e.args[0]->kind != Expr::Kind::kVar) {
        return Status::InvalidArgument("BOUND needs a variable");
      }
      auto it = ctx.binding->find(e.args[0]->var);
      return BoolTerm(it != ctx.binding->end() && it->second != kInvalidTermId);
    }
    case FuncOp::kIsIri: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      return BoolTerm(t.is_iri());
    }
    case FuncOp::kIsLiteral: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      return BoolTerm(t.is_literal());
    }
    case FuncOp::kIsBlank: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      return BoolTerm(t.is_blank());
    }
    case FuncOp::kStr: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      return Term::Literal(t.lexical);
    }
    case FuncOp::kContains: {
      LODVIZ_ASSIGN_OR_RETURN(Term a, arg_term(0));
      LODVIZ_ASSIGN_OR_RETURN(Term b, arg_term(1));
      return BoolTerm(a.lexical.find(b.lexical) != std::string::npos);
    }
    case FuncOp::kStrStarts: {
      LODVIZ_ASSIGN_OR_RETURN(Term a, arg_term(0));
      LODVIZ_ASSIGN_OR_RETURN(Term b, arg_term(1));
      return BoolTerm(a.lexical.rfind(b.lexical, 0) == 0);
    }
    case FuncOp::kLang: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      return Term::Literal(t.language);
    }
    case FuncOp::kDatatype: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      if (!t.is_literal()) return Status::InvalidArgument("DATATYPE of non-literal");
      return Term::Iri(t.datatype.empty() ? rdf::vocab::kXsdString : t.datatype);
    }
  }
  return Status::Internal("unhandled function");
}

Result<Term> EvalExpr(const Expr& e, const EvalContext& ctx) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kVar: {
      auto it = ctx.binding->find(e.var);
      if (it == ctx.binding->end() || it->second == kInvalidTermId) {
        return Status::NotFound("unbound variable ?" + e.var);
      }
      return ctx.dict->term(it->second);
    }
    case Expr::Kind::kBinary:
      return EvalBinary(e, ctx);
    case Expr::Kind::kUnary: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, EvalExpr(*e.args[0], ctx));
      if (e.un_op == UnOp::kNot) {
        LODVIZ_ASSIGN_OR_RETURN(bool b, EffectiveBool(t));
        return BoolTerm(!b);
      }
      LODVIZ_ASSIGN_OR_RETURN(double v, t.AsDouble());
      return Term::DoubleLiteral(-v);
    }
    case Expr::Kind::kFunc:
      return EvalFunc(e, ctx);
  }
  return Status::Internal("unhandled expr kind");
}

/// FILTER semantics: keep the row iff the expression evaluates to a true
/// EBV; evaluation errors reject the row.
bool PassesFilter(const Expr& e, const EvalContext& ctx) {
  Result<Term> t = EvalExpr(e, ctx);
  if (!t.ok()) return false;
  Result<bool> b = EffectiveBool(t.ValueOrDie());
  return b.ok() && b.ValueOrDie();
}

/// The evaluator proper (one per query execution).
class Evaluator {
 public:
  Evaluator(const rdf::TripleStore* store, bool optimize)
      : store_(store), optimize_(optimize) {}

  uint64_t intermediate_rows() const { return intermediate_rows_; }

  std::vector<Binding> EvalGroup(const GraphPattern& group,
                                 std::vector<Binding> seeds) {
    std::vector<Binding> solutions = EvalBgp(group.triples, std::move(seeds));

    if (!group.union_branches.empty()) {
      std::vector<Binding> unioned;
      for (const GraphPattern& branch : group.union_branches) {
        std::vector<Binding> branch_solutions = EvalGroup(branch, solutions);
        unioned.insert(unioned.end(),
                       std::make_move_iterator(branch_solutions.begin()),
                       std::make_move_iterator(branch_solutions.end()));
      }
      solutions = std::move(unioned);
      SparqlMetrics::Get().op_union_rows.Increment(solutions.size());
    }

    for (const GraphPattern& opt : group.optionals) {
      std::vector<Binding> next;
      for (const Binding& sol : solutions) {
        std::vector<Binding> extended = EvalGroup(opt, {sol});
        if (extended.empty()) {
          next.push_back(sol);
        } else {
          next.insert(next.end(), std::make_move_iterator(extended.begin()),
                      std::make_move_iterator(extended.end()));
        }
      }
      solutions = std::move(next);
      SparqlMetrics::Get().op_optional_rows.Increment(solutions.size());
    }

    if (!group.filters.empty()) {
      const size_t before = solutions.size();
      // Filters are pure per solution (dictionary reads are const), so
      // chunks evaluate independently and keep order on concatenation.
      std::vector<Binding> kept = exec::ParallelReduce<std::vector<Binding>>(
          0, solutions.size(), 64,
          [&](size_t cb, size_t ce) {
            std::vector<Binding> out;
            for (size_t si = cb; si < ce; ++si) {
              Binding& sol = solutions[si];
              EvalContext ctx{&store_->dict(), &sol};
              bool pass = true;
              for (const ExprPtr& f : group.filters) {
                if (!PassesFilter(*f, ctx)) {
                  pass = false;
                  break;
                }
              }
              if (pass) out.push_back(std::move(sol));
            }
            return out;
          },
          [](std::vector<Binding>& acc, std::vector<Binding>&& rhs) {
            acc.insert(acc.end(), std::make_move_iterator(rhs.begin()),
                       std::make_move_iterator(rhs.end()));
          });
      solutions = std::move(kept);
      SparqlMetrics::Get().op_filter_dropped.Increment(before -
                                                       solutions.size());
    }
    return solutions;
  }

 private:
  /// Returns true if the constant term exists in the dictionary and writes
  /// its id; a missing constant can never match.
  bool ResolveConst(const Term& t, TermId* id) const {
    *id = store_->dict().Lookup(t);
    return *id != kInvalidTermId;
  }

  /// Instantiates a pattern under a binding. Returns false if a constant
  /// (or bound var) cannot match anything.
  bool Instantiate(const TriplePatternAst& ast, const Binding& b,
                   rdf::TriplePattern* out) const {
    auto fill = [&](const NodeOrVar& n, TermId* slot) {
      if (IsVar(n)) {
        auto it = b.find(AsVar(n).name);
        *slot = (it == b.end()) ? kInvalidTermId : it->second;
        return true;
      }
      return ResolveConst(AsTerm(n), slot);
    };
    return fill(ast.s, &out->s) && fill(ast.p, &out->p) && fill(ast.o, &out->o);
  }

  /// Estimated cost of evaluating `ast` under current bound-variable set.
  double EstimateCost(const TriplePatternAst& ast,
                      const std::set<std::string>& bound) const {
    rdf::TriplePattern pat;
    Binding fake;
    for (const std::string& v : bound) fake[v] = 1;  // any non-zero id
    if (!Instantiate(ast, fake, &pat)) return 0.0;  // dead pattern: free
    return store_->EstimateSelectivity(pat) * static_cast<double>(store_->size());
  }

  std::vector<Binding> EvalBgp(const std::vector<TriplePatternAst>& triples,
                               std::vector<Binding> seeds) {
    if (triples.empty()) return seeds;
    LODVIZ_TRACE_SPAN("sparql.bgp");

    std::vector<const TriplePatternAst*> remaining;
    for (const auto& t : triples) remaining.push_back(&t);

    std::set<std::string> bound;
    if (!seeds.empty()) {
      for (const auto& [k, v] : seeds.front()) bound.insert(k);
    }

    std::vector<Binding> current = std::move(seeds);
    while (!remaining.empty()) {
      size_t pick = 0;
      if (optimize_) {
        LODVIZ_TRACE_SPAN("sparql.plan");
        double best = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < remaining.size(); ++i) {
          double cost = EstimateCost(*remaining[i], bound);
          if (cost < best) {
            best = cost;
            pick = i;
          }
        }
      }
      const TriplePatternAst& ast = *remaining[pick];
      remaining.erase(remaining.begin() + pick);

      // Solutions extend independently; per-chunk outputs concatenate in
      // chunk order, so `next` is ordered exactly as the serial loop
      // produced it. Matches are copied out of the Scan callback so the
      // store lock is held only for the index walk, not the binding work.
      std::vector<Binding> next = exec::ParallelReduce<std::vector<Binding>>(
          0, current.size(), 8,
          [&](size_t cb, size_t ce) {
            std::vector<Binding> out;
            for (size_t si = cb; si < ce; ++si) {
              const Binding& sol = current[si];
              rdf::TriplePattern pat;
              if (!Instantiate(ast, sol, &pat)) continue;
              std::vector<rdf::Triple> matches;
              store_->Scan(pat, [&](const rdf::Triple& t) {
                matches.push_back(t);
                return true;
              });
              for (const rdf::Triple& t : matches) {
                Binding extended = sol;
                bool ok = true;
                auto bind = [&](const NodeOrVar& n, TermId value) {
                  if (!IsVar(n)) return;
                  auto [it, inserted] = extended.emplace(AsVar(n).name, value);
                  if (!inserted && it->second != value) ok = false;
                };
                bind(ast.s, t.s);
                if (ok) bind(ast.p, t.p);
                if (ok) bind(ast.o, t.o);
                if (ok) out.push_back(std::move(extended));
              }
            }
            return out;
          },
          [](std::vector<Binding>& acc, std::vector<Binding>&& rhs) {
            acc.insert(acc.end(), std::make_move_iterator(rhs.begin()),
                       std::make_move_iterator(rhs.end()));
          });
      intermediate_rows_ += next.size();
      SparqlMetrics::Get().op_join_rows.Increment(next.size());
      current = std::move(next);
      auto note = [&](const NodeOrVar& n) {
        if (IsVar(n)) bound.insert(AsVar(n).name);
      };
      note(ast.s);
      note(ast.p);
      note(ast.o);
      if (current.empty()) break;
    }
    return current;
  }

  const rdf::TripleStore* store_;
  bool optimize_;
  uint64_t intermediate_rows_ = 0;
};

std::string RowKey(const std::vector<ResultCell>& row) {
  std::string key;
  for (const ResultCell& c : row) {
    key += c.bound ? c.term.ToNTriples() : "~";
    key += '\x01';
  }
  return key;
}

}  // namespace

QueryEngine::QueryEngine(const rdf::TripleStore* store, Options options)
    : store_(store), options_(options) {}

namespace {

Result<Query> ParseTraced(std::string_view text) {
  LODVIZ_TRACE_SPAN("sparql.parse");
  return ParseQuery(text);
}

}  // namespace

Result<ResultTable> QueryEngine::ExecuteString(std::string_view text) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return Execute(q);
}

Result<std::vector<rdf::ParsedTriple>> QueryEngine::ExecuteGraphString(
    std::string_view text) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return ExecuteGraph(q);
}

Result<std::vector<rdf::ParsedTriple>> QueryEngine::ExecuteGraph(
    const Query& query) const {
  LODVIZ_TRACE_SPAN("sparql.execute");
  SparqlMetrics& metrics = SparqlMetrics::Get();
  metrics.queries.Increment();
  Stopwatch sw;
  const rdf::Dictionary& dict = store_->dict();
  std::vector<rdf::ParsedTriple> out;
  // Record latency and output rows on every exit path.
  struct ExecFold {
    SparqlMetrics& metrics;
    const Stopwatch& sw;
    const std::vector<rdf::ParsedTriple>& out;
    ~ExecFold() {
      metrics.rows_out.Increment(out.size());
      metrics.execute_us.RecordDouble(sw.ElapsedMicros());
    }
  } fold{metrics, sw, out};
  std::set<std::string> seen;
  auto emit = [&](Term s, Term p, Term o) {
    std::string key = s.ToNTriples() + "\x01" + p.ToNTriples() + "\x01" +
                      o.ToNTriples();
    if (seen.insert(std::move(key)).second) {
      out.push_back({std::move(s), std::move(p), std::move(o)});
    }
  };

  if (query.form == QueryForm::kConstruct) {
    Evaluator evaluator(store_, options_.optimize_join_order);
    std::vector<Binding> solutions =
        evaluator.EvalGroup(query.where, {Binding{}});
    intermediate_rows_ = evaluator.intermediate_rows();
    SparqlMetrics::Get().intermediate_rows.Increment(intermediate_rows_);
    for (const Binding& sol : solutions) {
      for (const TriplePatternAst& tmpl : query.construct_template) {
        auto resolve = [&](const NodeOrVar& n, Term* t) {
          if (!IsVar(n)) {
            *t = AsTerm(n);
            return true;
          }
          auto it = sol.find(AsVar(n).name);
          if (it == sol.end() || it->second == kInvalidTermId) return false;
          *t = dict.term(it->second);
          return true;
        };
        Term s, p, o;
        if (!resolve(tmpl.s, &s) || !resolve(tmpl.p, &p) ||
            !resolve(tmpl.o, &o)) {
          continue;  // unbound variable: skip this template instance
        }
        if (s.is_literal() || !p.is_iri()) continue;  // invalid RDF
        emit(std::move(s), std::move(p), std::move(o));
      }
    }
    return out;
  }

  if (query.form == QueryForm::kDescribe) {
    // Collect the resources to describe.
    std::vector<TermId> resources;
    std::vector<std::string> target_vars;
    for (const NodeOrVar& target : query.describe_targets) {
      if (IsVar(target)) {
        target_vars.push_back(AsVar(target).name);
      } else {
        TermId id = dict.Lookup(AsTerm(target));
        if (id != kInvalidTermId) resources.push_back(id);
      }
    }
    if (!target_vars.empty()) {
      Evaluator evaluator(store_, options_.optimize_join_order);
      std::vector<Binding> solutions =
          evaluator.EvalGroup(query.where, {Binding{}});
      intermediate_rows_ = evaluator.intermediate_rows();
    SparqlMetrics::Get().intermediate_rows.Increment(intermediate_rows_);
      for (const Binding& sol : solutions) {
        for (const std::string& var : target_vars) {
          auto it = sol.find(var);
          if (it != sol.end() && it->second != kInvalidTermId) {
            resources.push_back(it->second);
          }
        }
      }
    }
    std::sort(resources.begin(), resources.end());
    resources.erase(std::unique(resources.begin(), resources.end()),
                    resources.end());

    // Emit every triple where the resource is subject or object.
    for (TermId r : resources) {
      store_->Scan({r, kInvalidTermId, kInvalidTermId},
                   [&](const rdf::Triple& t) {
                     emit(dict.term(t.s), dict.term(t.p), dict.term(t.o));
                     return true;
                   });
      store_->Scan({kInvalidTermId, kInvalidTermId, r},
                   [&](const rdf::Triple& t) {
                     emit(dict.term(t.s), dict.term(t.p), dict.term(t.o));
                     return true;
                   });
    }
    return out;
  }

  return Status::InvalidArgument(
      "ExecuteGraph expects a CONSTRUCT or DESCRIBE query");
}

Result<ResultTable> QueryEngine::Execute(const Query& query) const {
  if (query.form == QueryForm::kConstruct ||
      query.form == QueryForm::kDescribe) {
    return Status::InvalidArgument(
        "use ExecuteGraph for CONSTRUCT/DESCRIBE queries");
  }
  LODVIZ_TRACE_SPAN("sparql.execute");
  SparqlMetrics& metrics = SparqlMetrics::Get();
  metrics.queries.Increment();
  Stopwatch sw;
  Evaluator evaluator(store_, options_.optimize_join_order);
  std::vector<Binding> solutions =
      evaluator.EvalGroup(query.where, {Binding{}});
  intermediate_rows_ = evaluator.intermediate_rows();
  metrics.intermediate_rows.Increment(intermediate_rows_);
  // Record latency and output rows on every exit path.
  uint64_t rows_out = 0;
  struct ExecFold {
    SparqlMetrics& metrics;
    const Stopwatch& sw;
    const uint64_t& rows_out;
    ~ExecFold() {
      metrics.rows_out.Increment(rows_out);
      metrics.execute_us.RecordDouble(sw.ElapsedMicros());
    }
  } fold{metrics, sw, rows_out};

  const rdf::Dictionary& dict = store_->dict();

  if (query.form == QueryForm::kAsk) {
    ResultTable table;
    table.ask_result = !solutions.empty();
    return table;
  }

  // Determine output columns.
  std::vector<std::string> columns = query.select_vars;
  if (columns.empty() && query.aggregates.empty()) {
    std::set<std::string> seen;
    CollectVars(query.where, &columns, &seen);
  }

  auto cell_for = [&](const Binding& b, const std::string& var) {
    ResultCell cell;
    auto it = b.find(var);
    if (it == b.end() || it->second == kInvalidTermId) {
      cell.bound = false;
    } else {
      cell.term = dict.term(it->second);
    }
    return cell;
  };

  // ---- Aggregation path ----
  if (!query.aggregates.empty()) {
    std::vector<std::string> out_columns = query.group_by;
    for (const Aggregate& a : query.aggregates) out_columns.push_back(a.alias);
    ResultTable table(out_columns);

    // Group solutions by the group-by key.
    std::map<std::string, std::vector<const Binding*>> groups;
    for (const Binding& sol : solutions) {
      std::string key;
      for (const std::string& v : query.group_by) {
        auto it = sol.find(v);
        key += (it != sol.end()) ? std::to_string(it->second) : "~";
        key += '|';
      }
      groups[key].push_back(&sol);
    }
    if (groups.empty() && query.group_by.empty()) {
      groups[""] = {};  // aggregates over zero rows still yield one row
    }

    for (const auto& [key, members] : groups) {
      std::vector<ResultCell> row;
      if (!members.empty()) {
        for (const std::string& v : query.group_by) {
          row.push_back(cell_for(*members.front(), v));
        }
      } else {
        for (size_t i = 0; i < query.group_by.size(); ++i) {
          row.push_back(ResultCell{{}, false});
        }
      }
      for (const Aggregate& agg : query.aggregates) {
        if (agg.fn == Aggregate::Fn::kCount && agg.var.empty()) {
          row.push_back(ResultCell{Term::IntLiteral(
              static_cast<int64_t>(members.size()))});
          continue;
        }
        // Collect the argument terms (bound only).
        std::vector<Term> values;
        std::set<std::string> distinct_seen;
        for (const Binding* b : members) {
          auto it = b->find(agg.var);
          if (it == b->end() || it->second == kInvalidTermId) continue;
          Term t = dict.term(it->second);
          if (agg.distinct && !distinct_seen.insert(t.ToNTriples()).second) {
            continue;
          }
          values.push_back(std::move(t));
        }
        switch (agg.fn) {
          case Aggregate::Fn::kCount:
            row.push_back(ResultCell{
                Term::IntLiteral(static_cast<int64_t>(values.size()))});
            break;
          case Aggregate::Fn::kSum:
          case Aggregate::Fn::kAvg: {
            double sum = 0;
            uint64_t n = 0;
            for (const Term& t : values) {
              Result<double> v = t.AsDouble();
              if (v.ok()) {
                sum += v.ValueOrDie();
                ++n;
              }
            }
            double out = agg.fn == Aggregate::Fn::kSum
                             ? sum
                             : (n ? sum / static_cast<double>(n) : 0.0);
            row.push_back(ResultCell{Term::DoubleLiteral(out)});
            break;
          }
          case Aggregate::Fn::kMin:
          case Aggregate::Fn::kMax: {
            if (values.empty()) {
              row.push_back(ResultCell{{}, false});
              break;
            }
            const Term* best = &values.front();
            for (const Term& t : values) {
              Result<int> c = CompareTerms(t, *best);
              if (c.ok() && ((agg.fn == Aggregate::Fn::kMin &&
                              c.ValueOrDie() < 0) ||
                             (agg.fn == Aggregate::Fn::kMax &&
                              c.ValueOrDie() > 0))) {
                best = &t;
              }
            }
            row.push_back(ResultCell{*best});
            break;
          }
        }
      }
      table.AddRow(std::move(row));
    }
    rows_out = table.num_rows();
    return table;
  }

  // ---- Plain projection path ----
  ResultTable table(columns);
  for (const Binding& sol : solutions) {
    std::vector<ResultCell> row;
    row.reserve(columns.size());
    for (const std::string& v : columns) row.push_back(cell_for(sol, v));
    table.AddRow(std::move(row));
  }

  // ORDER BY.
  if (!query.order_by.empty()) {
    std::vector<int> key_idx;
    for (const OrderKey& k : query.order_by) {
      key_idx.push_back(table.ColumnIndex(k.var));
    }
    std::vector<std::vector<ResultCell>> rows = table.rows();
    std::stable_sort(
        rows.begin(), rows.end(),
        [&](const std::vector<ResultCell>& a,
            const std::vector<ResultCell>& b) {
          for (size_t i = 0; i < key_idx.size(); ++i) {
            int idx = key_idx[i];
            if (idx < 0) continue;
            const ResultCell& ca = a[idx];
            const ResultCell& cb = b[idx];
            if (!ca.bound && !cb.bound) continue;
            if (!ca.bound) return query.order_by[i].ascending;
            if (!cb.bound) return !query.order_by[i].ascending;
            Result<int> c = CompareTerms(ca.term, cb.term);
            int cv = c.ok() ? c.ValueOrDie() : 0;
            if (cv != 0) {
              return query.order_by[i].ascending ? cv < 0 : cv > 0;
            }
          }
          return false;
        });
    ResultTable sorted(columns);
    for (auto& r : rows) sorted.AddRow(std::move(r));
    table = std::move(sorted);
  }

  // DISTINCT.
  if (query.distinct) {
    ResultTable deduped(columns);
    std::set<std::string> seen;
    for (const auto& row : table.rows()) {
      if (seen.insert(RowKey(row)).second) deduped.AddRow(row);
    }
    table = std::move(deduped);
  }

  // OFFSET / LIMIT.
  if (query.offset > 0 || query.limit >= 0) {
    ResultTable sliced(columns);
    int64_t skipped = 0, taken = 0;
    for (const auto& row : table.rows()) {
      if (skipped < query.offset) {
        ++skipped;
        continue;
      }
      if (query.limit >= 0 && taken >= query.limit) break;
      sliced.AddRow(row);
      ++taken;
    }
    table = std::move(sliced);
  }

  rows_out = table.num_rows();
  return table;
}

}  // namespace lodviz::sparql
