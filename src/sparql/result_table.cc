#include "sparql/result_table.h"

#include <sstream>

#include "common/table_printer.h"

namespace lodviz::sparql {

int ResultTable::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::string ResultTable::ToString(size_t max_rows) const {
  std::vector<std::string> header;
  for (const std::string& c : columns_) header.push_back("?" + c);
  if (header.empty()) header.push_back("(ask)");
  TablePrinter tp(header);
  size_t shown = 0;
  for (const auto& row : rows_) {
    if (shown++ >= max_rows) break;
    std::vector<std::string> cells;
    for (const ResultCell& cell : row) {
      cells.push_back(cell.bound ? cell.term.ToNTriples() : "—");
    }
    if (cells.empty()) cells.push_back(ask_result ? "true" : "false");
    tp.AddRow(std::move(cells));
  }
  std::ostringstream oss;
  tp.Print(oss);
  if (rows_.size() > max_rows) {
    oss << "... (" << rows_.size() - max_rows << " more rows)\n";
  }
  return oss.str();
}

}  // namespace lodviz::sparql
