#ifndef LODVIZ_SPARQL_RESULT_TABLE_H_
#define LODVIZ_SPARQL_RESULT_TABLE_H_

#include <string>
#include <vector>

#include "rdf/term.h"
#include "sparql/row_append.h"

namespace lodviz::sparql {

/// A materialized query result: column names + rows of terms. Unbound
/// cells (OPTIONAL misses) hold an empty-IRI sentinel with `bound = false`.
struct ResultCell {
  rdf::Term term;
  bool bound = true;
};

class ResultTable {
 public:
  ResultTable() = default;
  explicit ResultTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<ResultCell>>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends one row; its width must match the column count (same
  /// width-check helper the executor's binding tables use).
  void AddRow(std::vector<ResultCell> row) {
    CheckRowWidth(row.size(), columns_.size());
    rows_.push_back(std::move(row));
  }

  /// Pre-sizes the row store (the engine's materialization paths know
  /// their output cardinality up front).
  void Reserve(size_t rows) { rows_.reserve(rows); }

  /// Index of a column by name; -1 if absent.
  int ColumnIndex(std::string_view name) const;

  /// ASCII rendering for CLI examples.
  std::string ToString(size_t max_rows = 50) const;

  /// For ASK queries: whether any solution existed.
  bool ask_result = false;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<ResultCell>> rows_;
};

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_RESULT_TABLE_H_
