#ifndef LODVIZ_SPARQL_ROW_APPEND_H_
#define LODVIZ_SPARQL_ROW_APPEND_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"

namespace lodviz::sparql {

/// Width contract shared by every row-appending table in this module
/// (the executor's BindingTable and the public ResultTable): a row must
/// match the table's column count exactly. Centralized so both tables
/// enforce the same invariant instead of hand-rolling it.
inline void CheckRowWidth(size_t row_width, size_t table_width) {
  LODVIZ_CHECK(row_width == table_width)
      << "row width " << row_width << " != table width " << table_width;
}

/// Row-major flat storage of fixed-width rows: `width` cells per row,
/// contiguous. The common substrate under BindingTable (TermId cells) —
/// append, bulk-concatenate, reserve — extracted so the append/reserve
/// logic exists once.
template <typename Cell>
class FlatRows {
 public:
  FlatRows() = default;
  explicit FlatRows(size_t width) : width_(width) {}

  [[nodiscard]] size_t width() const { return width_; }
  [[nodiscard]] size_t num_rows() const {
    return width_ == 0 ? 0 : data_.size() / width_;
  }

  [[nodiscard]] const Cell* row(size_t i) const {
    return data_.data() + i * width_;
  }

  [[nodiscard]] const std::vector<Cell>& data() const { return data_; }

  /// Appends a copy of `src` (width cells).
  void AppendRow(const Cell* src) {
    data_.insert(data_.end(), src, src + width_);
  }

  /// Appends one row of `width` copies of `fill`.
  void AppendFillRow(const Cell& fill) {
    data_.resize(data_.size() + width_, fill);
  }

  /// Concatenates `other` (same width; an empty table of any width is ok).
  void Append(FlatRows&& other) {
    if (other.data_.empty()) return;
    if (data_.empty()) {
      *this = std::move(other);
      return;
    }
    CheckRowWidth(other.width_, width_);
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  }

  void Reserve(size_t rows) { data_.reserve(rows * width_); }

  /// Drops all rows, keeping capacity (for seed-table reuse in loops).
  void Clear() { data_.clear(); }

 private:
  size_t width_ = 0;
  std::vector<Cell> data_;
};

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_ROW_APPEND_H_
