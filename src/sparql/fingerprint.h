#ifndef LODVIZ_SPARQL_FINGERPRINT_H_
#define LODVIZ_SPARQL_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "sparql/ast.h"

namespace lodviz::sparql {

/// Stable 64-bit fingerprint of a parsed query, computed over a canonical
/// serialization of the AST. Two parses of the "same" query agree on the
/// fingerprint regardless of
///
///  - whitespace, comments, and PREFIX spelling (erased by the parser);
///  - variable names: variables are renumbered in first-appearance order
///    of a fixed AST traversal, so `?s ?p` and `?x ?y` used identically
///    fingerprint identically;
///  - literal spelling: decodable literals (numeric, temporal, boolean)
///    hash their decoded value, so `30`, `"30"^^xsd:integer` and
///    `"+30"^^xsd:integer` agree (FILTER comparison semantics are
///    value-based, so these denote the same query).
///
/// Structural differences — a different constant, operator, pattern list,
/// modifier, or query form — change the fingerprint (up to 64-bit hash
/// collisions, so an exact-match consumer such as the planned plan cache
/// must still verify on hit). Triple-pattern order is part of the
/// fingerprint: the planner reorders deterministically from the same
/// textual order, so the fingerprint keys plans, not solution sets.
///
/// The hash is a fixed FNV-1a/64 over the serialization: it depends only
/// on the AST contents, never on pointers, process state, or platform
/// (doubles hash their IEEE-754 bits).
[[nodiscard]] uint64_t QueryFingerprint(const Query& query);

/// The canonical byte serialization QueryFingerprint hashes — two queries
/// share a fingerprint with certainty (not just up to hash collisions) iff
/// their canonical keys are byte-identical. The serving layer's plan cache
/// stores this alongside each cached plan and compares it on every
/// fingerprint hit, so a 64-bit collision degrades to a cache miss instead
/// of executing the wrong plan.
[[nodiscard]] std::string CanonicalQueryKey(const Query& query);

/// The fixed FNV-1a/64 the fingerprint uses; exposed so consumers hashing
/// a CanonicalQueryKey they already hold can avoid a second AST walk.
[[nodiscard]] uint64_t Fnv1a64(std::string_view bytes);

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_FINGERPRINT_H_
