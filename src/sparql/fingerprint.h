#ifndef LODVIZ_SPARQL_FINGERPRINT_H_
#define LODVIZ_SPARQL_FINGERPRINT_H_

#include <cstdint>

#include "sparql/ast.h"

namespace lodviz::sparql {

/// Stable 64-bit fingerprint of a parsed query, computed over a canonical
/// serialization of the AST. Two parses of the "same" query agree on the
/// fingerprint regardless of
///
///  - whitespace, comments, and PREFIX spelling (erased by the parser);
///  - variable names: variables are renumbered in first-appearance order
///    of a fixed AST traversal, so `?s ?p` and `?x ?y` used identically
///    fingerprint identically;
///  - literal spelling: decodable literals (numeric, temporal, boolean)
///    hash their decoded value, so `30`, `"30"^^xsd:integer` and
///    `"+30"^^xsd:integer` agree (FILTER comparison semantics are
///    value-based, so these denote the same query).
///
/// Structural differences — a different constant, operator, pattern list,
/// modifier, or query form — change the fingerprint (up to 64-bit hash
/// collisions, so an exact-match consumer such as the planned plan cache
/// must still verify on hit). Triple-pattern order is part of the
/// fingerprint: the planner reorders deterministically from the same
/// textual order, so the fingerprint keys plans, not solution sets.
///
/// The hash is a fixed FNV-1a/64 over the serialization: it depends only
/// on the AST contents, never on pointers, process state, or platform
/// (doubles hash their IEEE-754 bits).
[[nodiscard]] uint64_t QueryFingerprint(const Query& query);

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_FINGERPRINT_H_
