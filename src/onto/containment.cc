#include "onto/containment.h"

#include <algorithm>
#include <cmath>

namespace lodviz::onto {

namespace {

/// Relative placement of a subtree: radius of the node's circle and the
/// offsets of each descendant circle from the node's own center.
struct SubLayout {
  double radius = 0.0;
  // (class_idx, dx, dy, r) relative to this subtree's center.
  std::vector<ContainmentCircle> circles;
};

/// Packs `items` (radii) on a ring; returns ring radius and center angles.
/// Guarantees adjacent chords >= spacing * (r_i + r_j).
double RingRadius(const std::vector<double>& radii, double spacing) {
  if (radii.size() == 1) return 0.0;
  // Required perimeter: each adjacent pair needs arc >= spacing*(ri+rj);
  // summing over the cycle counts each radius twice.
  double perimeter = 0.0;
  double max_r = 0.0;
  for (double r : radii) {
    perimeter += 2.0 * spacing * r;
    max_r = std::max(max_r, r);
  }
  // The chord is shorter than the arc, so enforce a floor that keeps even
  // two large circles apart; also keep the ring wider than the biggest
  // child so circles never reach the center.
  return std::max(perimeter / (2.0 * M_PI), max_r * spacing);
}

SubLayout LayoutSubtree(const ClassHierarchy& h, int32_t node,
                        const ContainmentOptions& options) {
  const ClassInfo& info = h.classes()[node];
  SubLayout out;

  // Base radius from the node's own weight.
  double own = std::sqrt(1.0 + static_cast<double>(info.direct_instances));

  if (info.children.empty()) {
    out.radius = own;
    out.circles.push_back({node, 0.0, 0.0, out.radius});
    return out;
  }

  std::vector<SubLayout> child_layouts;
  std::vector<double> child_radii;
  for (int32_t c : info.children) {
    child_layouts.push_back(LayoutSubtree(h, c, options));
    child_radii.push_back(child_layouts.back().radius);
  }

  double ring = RingRadius(child_radii, options.sibling_spacing);
  double max_child = *std::max_element(child_radii.begin(), child_radii.end());
  out.radius =
      std::max(own, (ring + max_child) * options.parent_padding);

  // Place children around the ring, angle share proportional to radius.
  double total = 0.0;
  for (double r : child_radii) total += r;
  double angle = 0.0;
  for (size_t i = 0; i < child_layouts.size(); ++i) {
    double share = 2.0 * M_PI * child_radii[i] / std::max(1e-12, total);
    double theta = angle + share / 2.0;
    angle += share;
    double dx = ring * std::cos(theta);
    double dy = ring * std::sin(theta);
    for (ContainmentCircle circle : child_layouts[i].circles) {
      circle.cx += dx;
      circle.cy += dy;
      out.circles.push_back(circle);
    }
  }
  out.circles.push_back({node, 0.0, 0.0, out.radius});
  return out;
}

}  // namespace

std::vector<ContainmentCircle> CropCirclesLayout(
    const ClassHierarchy& hierarchy, const ContainmentOptions& options) {
  std::vector<ContainmentCircle> out;
  if (hierarchy.roots().empty()) return out;

  // Treat the forest as children of a virtual root.
  std::vector<SubLayout> root_layouts;
  std::vector<double> root_radii;
  for (int32_t root : hierarchy.roots()) {
    root_layouts.push_back(LayoutSubtree(hierarchy, root, options));
    root_radii.push_back(root_layouts.back().radius);
  }
  double ring = RingRadius(root_radii, options.sibling_spacing);
  double max_root = *std::max_element(root_radii.begin(), root_radii.end());
  double world = (ring + max_root) * options.parent_padding;

  double total = 0.0;
  for (double r : root_radii) total += r;
  double angle = 0.0;
  for (size_t i = 0; i < root_layouts.size(); ++i) {
    double share = 2.0 * M_PI * root_radii[i] / std::max(1e-12, total);
    double theta = angle + share / 2.0;
    angle += share;
    double dx = root_layouts.size() == 1 ? 0.0 : ring * std::cos(theta);
    double dy = root_layouts.size() == 1 ? 0.0 : ring * std::sin(theta);
    for (ContainmentCircle circle : root_layouts[i].circles) {
      circle.cx += dx;
      circle.cy += dy;
      out.push_back(circle);
    }
  }

  // Fit into the unit square centered at (0.5, 0.5).
  double scale = 0.5 / world;
  for (ContainmentCircle& c : out) {
    c.cx = 0.5 + c.cx * scale;
    c.cy = 0.5 + c.cy * scale;
    c.r *= scale;
  }
  return out;
}

}  // namespace lodviz::onto
