#ifndef LODVIZ_ONTO_CONTAINMENT_H_
#define LODVIZ_ONTO_CONTAINMENT_H_

#include <vector>

#include "onto/hierarchy.h"

namespace lodviz::onto {

/// One class rendered as a circle; children are strictly inside their
/// parent (geometric containment, CropCircles [137]).
struct ContainmentCircle {
  int32_t class_idx = -1;
  double cx = 0.0;
  double cy = 0.0;
  double r = 0.0;
};

struct ContainmentOptions {
  /// Padding factor between a child ring and the parent border (> 1).
  double parent_padding = 1.25;
  /// Slack between adjacent siblings on the ring (> 1).
  double sibling_spacing = 1.5;
};

/// CropCircles-style containment layout: class circles sized by subtree
/// instance count, nested inside their parents, the whole forest fitted
/// into the unit square. Invariants (tested): every child circle lies
/// strictly inside its parent; sibling circles do not overlap.
std::vector<ContainmentCircle> CropCirclesLayout(
    const ClassHierarchy& hierarchy, const ContainmentOptions& options = {});

}  // namespace lodviz::onto

#endif  // LODVIZ_ONTO_CONTAINMENT_H_
