#include "onto/hierarchy.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "rdf/vocab.h"

namespace lodviz::onto {

ClassHierarchy ClassHierarchy::Extract(const rdf::TripleStore& store) {
  ClassHierarchy h;
  const rdf::Dictionary& dict = store.dict();
  rdf::TermId type_pred = dict.Lookup(rdf::Term::Iri(rdf::vocab::kRdfType));
  rdf::TermId sub_pred =
      dict.Lookup(rdf::Term::Iri(rdf::vocab::kRdfsSubClassOf));
  rdf::TermId label_pred =
      dict.Lookup(rdf::Term::Iri(rdf::vocab::kRdfsLabel));

  std::unordered_map<rdf::TermId, int32_t> index;
  auto class_of = [&](rdf::TermId cls) {
    auto [it, inserted] =
        index.emplace(cls, static_cast<int32_t>(h.classes_.size()));
    if (inserted) {
      ClassInfo info;
      info.cls = cls;
      info.label = dict.term(cls).lexical;
      h.classes_.push_back(std::move(info));
    }
    return it->second;
  };

  // Classes from rdf:type objects, with direct instance counts.
  if (type_pred != rdf::kInvalidTermId) {
    store.Scan({rdf::kInvalidTermId, type_pred, rdf::kInvalidTermId},
               [&](const rdf::Triple& t) {
                 ++h.classes_[class_of(t.o)].direct_instances;
                 return true;
               });
  }
  // Hierarchy edges from rdfs:subClassOf (child keeps its first parent).
  if (sub_pred != rdf::kInvalidTermId) {
    store.Scan({rdf::kInvalidTermId, sub_pred, rdf::kInvalidTermId},
               [&](const rdf::Triple& t) {
                 if (t.s == t.o) return true;
                 int32_t child = class_of(t.s);
                 int32_t parent = class_of(t.o);
                 if (h.classes_[child].parent == -1) {
                   h.classes_[child].parent = parent;
                 }
                 return true;
               });
  }

  // Break cycles: walk up from each node; any node that reaches itself
  // gets promoted to a root.
  for (size_t i = 0; i < h.classes_.size(); ++i) {
    int32_t slow = static_cast<int32_t>(i);
    int32_t cursor = h.classes_[i].parent;
    size_t steps = 0;
    while (cursor != -1 && steps++ <= h.classes_.size()) {
      if (cursor == slow) {
        h.classes_[i].parent = -1;  // cycle: cut here
        break;
      }
      cursor = h.classes_[cursor].parent;
    }
    if (steps > h.classes_.size()) h.classes_[i].parent = -1;
  }

  // Children lists, roots, depths.
  for (size_t i = 0; i < h.classes_.size(); ++i) {
    int32_t parent = h.classes_[i].parent;
    if (parent == -1) {
      h.roots_.push_back(static_cast<int32_t>(i));
    } else {
      h.classes_[parent].children.push_back(static_cast<int32_t>(i));
    }
  }
  // Depth + subtree instances via DFS from roots.
  std::vector<int32_t> stack(h.roots_.rbegin(), h.roots_.rend());
  std::vector<int32_t> order;  // topological (parents first)
  while (!stack.empty()) {
    int32_t node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (int32_t c : h.classes_[node].children) {
      h.classes_[c].depth = h.classes_[node].depth + 1;
      stack.push_back(c);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    ClassInfo& info = h.classes_[*it];
    info.subtree_instances = info.direct_instances;
    for (int32_t c : info.children) {
      info.subtree_instances += h.classes_[c].subtree_instances;
    }
  }

  // Human labels where available.
  if (label_pred != rdf::kInvalidTermId) {
    for (ClassInfo& info : h.classes_) {
      auto labels = store.Match({info.cls, label_pred, rdf::kInvalidTermId});
      if (!labels.empty()) info.label = dict.term(labels.front().o).lexical;
    }
  }
  return h;
}

int32_t ClassHierarchy::IndexOf(rdf::TermId cls) const {
  for (size_t i = 0; i < classes_.size(); ++i) {
    if (classes_[i].cls == cls) return static_cast<int32_t>(i);
  }
  return -1;
}

std::vector<int32_t> ClassHierarchy::KeyConcepts(size_t k) const {
  // KC-Viz-inspired structural importance: coverage (subtree instances),
  // branching (children), and shallowness.
  std::vector<std::pair<double, int32_t>> scored;
  for (size_t i = 0; i < classes_.size(); ++i) {
    const ClassInfo& info = classes_[i];
    double score = std::log1p(static_cast<double>(info.subtree_instances)) +
                   0.5 * static_cast<double>(info.children.size()) -
                   0.3 * static_cast<double>(info.depth);
    scored.emplace_back(score, static_cast<int32_t>(i));
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<int32_t> out;
  for (size_t i = 0; i < std::min(k, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

uint32_t ClassHierarchy::MaxDepth() const {
  uint32_t best = 0;
  for (const ClassInfo& c : classes_) best = std::max(best, c.depth);
  return best;
}

std::string ClassHierarchy::ToString(size_t max_classes) const {
  std::ostringstream oss;
  size_t shown = 0;
  // DFS print.
  std::vector<int32_t> stack(roots_.rbegin(), roots_.rend());
  while (!stack.empty() && shown < max_classes) {
    int32_t node = stack.back();
    stack.pop_back();
    const ClassInfo& info = classes_[node];
    oss << std::string(info.depth * 2, ' ') << info.label << " ("
        << info.direct_instances << " direct, " << info.subtree_instances
        << " total)\n";
    ++shown;
    for (auto it = info.children.rbegin(); it != info.children.rend(); ++it) {
      stack.push_back(*it);
    }
  }
  if (shown == max_classes && classes_.size() > max_classes) {
    oss << "... (" << classes_.size() - max_classes << " more classes)\n";
  }
  return oss.str();
}

}  // namespace lodviz::onto
