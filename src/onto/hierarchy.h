#ifndef LODVIZ_ONTO_HIERARCHY_H_
#define LODVIZ_ONTO_HIERARCHY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/triple_store.h"

namespace lodviz::onto {

/// One class in the extracted hierarchy.
struct ClassInfo {
  rdf::TermId cls = rdf::kInvalidTermId;
  std::string label;               ///< rdfs:label or the IRI
  int32_t parent = -1;             ///< index into classes; -1 = root
  std::vector<int32_t> children;   ///< indexes into classes
  uint64_t direct_instances = 0;   ///< entities typed exactly this class
  uint64_t subtree_instances = 0;  ///< direct + all descendants
  uint32_t depth = 0;
};

/// The class hierarchy of a WoD source (Section 3.5): rdfs:subClassOf
/// edges plus rdf:type instance counts, normalized into a forest (a DAG
/// child keeps its first parent; cycles are broken deterministically).
/// This is the structure every ontology visualizer in Table 2 draws.
class ClassHierarchy {
 public:
  /// Extracts the hierarchy from `store`. Classes are anything appearing
  /// as an rdf:type object or on either side of rdfs:subClassOf.
  static ClassHierarchy Extract(const rdf::TripleStore& store);

  const std::vector<ClassInfo>& classes() const { return classes_; }
  const std::vector<int32_t>& roots() const { return roots_; }
  size_t size() const { return classes_.size(); }

  /// Index of a class by term id; -1 if absent.
  int32_t IndexOf(rdf::TermId cls) const;

  /// KC-Viz-style key concepts [104]: the k most "important" classes by a
  /// structural score (subtree instances + direct children + shallowness).
  std::vector<int32_t> KeyConcepts(size_t k) const;

  /// Maximum depth of the forest.
  uint32_t MaxDepth() const;

  /// Compact indented rendering.
  std::string ToString(size_t max_classes = 50) const;

 private:
  std::vector<ClassInfo> classes_;
  std::vector<int32_t> roots_;
};

}  // namespace lodviz::onto

#endif  // LODVIZ_ONTO_HIERARCHY_H_
