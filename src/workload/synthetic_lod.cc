#include "workload/synthetic_lod.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "rdf/vocab.h"

namespace lodviz::workload {

namespace {

const char* kAdjectives[] = {"ancient", "blue",  "coastal", "digital",
                             "eastern", "famous", "grand",   "hidden",
                             "iron",    "jade",   "keen",    "lunar"};
const char* kNouns[] = {"archive", "bridge", "citadel", "delta",
                        "engine",  "forest", "garden",  "harbor",
                        "island",  "junction", "keep",   "library"};

struct Generator {
  const SyntheticLodOptions& options;
  Rng rng;
  ZipfSampler category_zipf;
  // Preferential-attachment endpoint pool for knows edges.
  std::vector<uint64_t> pool;

  explicit Generator(const SyntheticLodOptions& opts)
      : options(opts),
        rng(opts.seed),
        category_zipf(std::max(1, opts.num_categories),
                      opts.category_zipf_alpha) {}

  std::string EntityIri(uint64_t i) const {
    return lod::kEntityPrefix + std::to_string(i);
  }

  void Emit(std::vector<rdf::ParsedTriple>* out, rdf::Term s, rdf::Term p,
            rdf::Term o) {
    out->push_back({std::move(s), std::move(p), std::move(o)});
  }

  void GenerateEntity(uint64_t i, std::vector<rdf::ParsedTriple>* out) {
    using rdf::Term;
    Term subject = Term::Iri(EntityIri(i));

    const char* type = nullptr;
    switch (i % 3) {
      case 0:
        type = lod::kPerson;
        break;
      case 1:
        type = lod::kPlace;
        break;
      default:
        type = lod::kOrganization;
    }
    if (options.with_types) {
      Emit(out, subject, Term::Iri(rdf::vocab::kRdfType), Term::Iri(type));
    }
    if (options.with_labels) {
      std::string label = std::string(kAdjectives[rng.Uniform(12)]) + " " +
                          kNouns[rng.Uniform(12)] + " " + std::to_string(i);
      Emit(out, subject, Term::Iri(rdf::vocab::kRdfsLabel),
           Term::LangLiteral(label, "en"));
    }
    if (options.with_numeric) {
      double age = std::clamp(rng.Normal(40.0, 12.0), 0.0, 100.0);
      Emit(out, subject, Term::Iri(lod::kAge),
           Term::DoubleLiteral(std::round(age * 10.0) / 10.0));
    }
    if (options.with_dates) {
      // 2000-01-01 = 946684800; 16 years of seconds.
      int64_t t = 946684800 +
                  static_cast<int64_t>(rng.Uniform(16ULL * 365 * 86400));
      Emit(out, subject, Term::Iri(lod::kCreated), Term::DateTimeLiteral(t));
    }
    if (options.with_geo) {
      // Clustered around 5 hubs to mimic real geographic skew.
      static constexpr double kHubs[5][2] = {{40.7, -74.0},
                                             {51.5, -0.1},
                                             {37.9, 23.7},
                                             {-37.8, 144.9},
                                             {35.7, 139.7}};
      const double* hub = kHubs[rng.Uniform(5)];
      double lat = std::clamp(hub[0] + rng.Normal(0.0, 2.0), -89.9, 89.9);
      double lon = std::clamp(hub[1] + rng.Normal(0.0, 2.0), -179.9, 179.9);
      Emit(out, subject, Term::Iri(rdf::vocab::kGeoLat),
           Term::DoubleLiteral(lat));
      Emit(out, subject, Term::Iri(rdf::vocab::kGeoLong),
           Term::DoubleLiteral(lon));
    }
    if (options.with_category) {
      uint64_t cat = category_zipf.Sample(rng);
      Emit(out, subject, Term::Iri(lod::kCategory),
           Term::Iri(lod::kCategoryPrefix + std::to_string(cat)));
    }
    // Entity links with preferential attachment (heavy-tailed in-degree).
    if (i > 0 && options.links_per_entity > 0) {
      int links = static_cast<int>(options.links_per_entity);
      double frac = options.links_per_entity - links;
      if (rng.Bernoulli(frac)) ++links;
      for (int l = 0; l < links; ++l) {
        uint64_t target = pool.empty() ? rng.Uniform(i)
                                       : pool[rng.Uniform(pool.size())];
        if (target == i) continue;
        Emit(out, subject, Term::Iri(lod::kKnows),
             Term::Iri(EntityIri(target)));
        pool.push_back(i);
        pool.push_back(target);
        // Bound pool growth for very large datasets.
        if (pool.size() > 1u << 20) {
          pool[rng.Uniform(pool.size())] = target;
          pool.pop_back();
        }
      }
    }
  }
};

}  // namespace

std::vector<rdf::ParsedTriple> GenerateSyntheticLodTriples(
    const SyntheticLodOptions& options) {
  Generator gen(options);
  std::vector<rdf::ParsedTriple> out;
  for (uint64_t i = 0; i < options.num_entities; ++i) {
    gen.GenerateEntity(i, &out);
  }
  return out;
}

size_t GenerateSyntheticLod(const SyntheticLodOptions& options,
                            rdf::TripleStore* store) {
  Generator gen(options);
  size_t total = 0;
  std::vector<rdf::ParsedTriple> buffer;
  for (uint64_t i = 0; i < options.num_entities; ++i) {
    buffer.clear();
    gen.GenerateEntity(i, &buffer);
    for (const rdf::ParsedTriple& pt : buffer) {
      store->Add(pt.subject, pt.predicate, pt.object);
    }
    total += buffer.size();
  }
  return total;
}

}  // namespace lodviz::workload
