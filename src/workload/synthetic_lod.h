#ifndef LODVIZ_WORKLOAD_SYNTHETIC_LOD_H_
#define LODVIZ_WORKLOAD_SYNTHETIC_LOD_H_

#include <cstdint>
#include <vector>

#include "rdf/streaming.h"
#include "rdf/triple_store.h"

namespace lodviz::workload {

/// IRIs of the synthetic LOD ontology (DBpedia-like shapes).
namespace lod {
inline constexpr char kEntityPrefix[] = "http://lod.example/entity/";
inline constexpr char kPerson[] = "http://lod.example/ontology/Person";
inline constexpr char kPlace[] = "http://lod.example/ontology/Place";
inline constexpr char kOrganization[] =
    "http://lod.example/ontology/Organization";
inline constexpr char kAge[] = "http://lod.example/ontology/age";
inline constexpr char kCreated[] = "http://lod.example/ontology/created";
inline constexpr char kCategory[] = "http://lod.example/ontology/category";
inline constexpr char kKnows[] = "http://lod.example/ontology/knows";
inline constexpr char kCategoryPrefix[] = "http://lod.example/category/";
}  // namespace lod

/// Parameters of the synthetic Linked Data generator. The generated
/// dataset has the statistical shapes of real WoD sources: Zipfian
/// category popularity, preferential-attachment entity links, labels for
/// keyword search, and numeric/temporal/spatial property values — so it
/// exercises exactly the code paths live endpoints would.
struct SyntheticLodOptions {
  uint64_t num_entities = 1000;
  uint64_t seed = 42;
  /// Mean entity-to-entity links per entity (preferential attachment).
  double links_per_entity = 3.0;
  /// Distinct category values, Zipf-distributed.
  int num_categories = 12;
  double category_zipf_alpha = 1.0;
  bool with_types = true;    ///< rdf:type Person/Place/Organization
  bool with_labels = true;   ///< rdfs:label "<Kind> N alpha..."
  bool with_numeric = true;  ///< age ~ Normal(40, 12), clamped to [0, 100]
  bool with_dates = true;    ///< created in [2000-01-01, 2016-01-01)
  bool with_geo = true;      ///< lat/long clustered around a few hubs
  bool with_category = true;
};

/// Generates the dataset directly into `store`. Returns triple count.
size_t GenerateSyntheticLod(const SyntheticLodOptions& options,
                            rdf::TripleStore* store);

/// Materializes the same dataset as parsed triples (for endpoint /
/// streaming simulations).
std::vector<rdf::ParsedTriple> GenerateSyntheticLodTriples(
    const SyntheticLodOptions& options);

}  // namespace lodviz::workload

#endif  // LODVIZ_WORKLOAD_SYNTHETIC_LOD_H_
