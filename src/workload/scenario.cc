#include "workload/scenario.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace lodviz::workload {

std::vector<RangeQuery> ExplorationRangeScenario(double domain_lo,
                                                 double domain_hi,
                                                 size_t num_queries,
                                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<RangeQuery> queries;
  double span = domain_hi - domain_lo;
  double focus = domain_lo + span * rng.UniformDouble();
  double width = span * 0.5;  // first queries are broad

  for (size_t q = 0; q < num_queries; ++q) {
    if (rng.Bernoulli(0.15)) {
      // Jump to a new focus and widen (new overview).
      focus = domain_lo + span * rng.UniformDouble();
      width = span * rng.UniformDouble(0.3, 0.6);
    } else if (rng.Bernoulli(0.5)) {
      // Zoom in around the focus.
      width = std::max(span * 0.002, width * rng.UniformDouble(0.4, 0.8));
    } else {
      // Pan: shift the focus by a fraction of the current width.
      focus += width * rng.UniformDouble(-0.6, 0.6);
    }
    double lo = std::clamp(focus - width / 2, domain_lo, domain_hi);
    double hi = std::clamp(focus + width / 2, domain_lo, domain_hi);
    if (hi <= lo) hi = std::min(domain_hi, lo + span * 0.001);
    queries.push_back({lo, hi});
  }
  return queries;
}

std::vector<geo::TileKey> PanZoomTileScenario(uint8_t max_zoom,
                                              size_t num_requests,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::TileKey> requests;
  uint8_t zoom = max_zoom / 2;
  auto dim = [&](uint8_t z) { return 1u << z; };
  int64_t x = rng.Uniform(dim(zoom));
  int64_t y = rng.Uniform(dim(zoom));
  int dx = 1, dy = 0;

  for (size_t q = 0; q < num_requests; ++q) {
    requests.push_back({zoom, static_cast<uint32_t>(x),
                        static_cast<uint32_t>(y)});
    double action = rng.UniformDouble();
    if (action < 0.70) {
      // Keep panning with momentum; occasionally turn.
      if (rng.Bernoulli(0.2)) {
        dx = static_cast<int>(rng.Uniform(3)) - 1;
        dy = static_cast<int>(rng.Uniform(3)) - 1;
        if (dx == 0 && dy == 0) dx = 1;
      }
      x += dx;
      y += dy;
    } else if (action < 0.85 && zoom < max_zoom) {
      // Zoom in toward the current tile.
      ++zoom;
      x = 2 * x + rng.Uniform(2);
      y = 2 * y + rng.Uniform(2);
    } else if (zoom > 0) {
      // Zoom out.
      --zoom;
      x /= 2;
      y /= 2;
    }
    int64_t n = dim(zoom);
    x = std::clamp<int64_t>(x, 0, n - 1);
    y = std::clamp<int64_t>(y, 0, n - 1);
  }
  return requests;
}

std::vector<viz::Sample> RandomWalkSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<viz::Sample> series(n);
  double v = 0.0;
  for (size_t i = 0; i < n; ++i) {
    v += rng.Normal(0.0, 1.0);
    series[i] = {static_cast<double>(i), v};
  }
  return series;
}

}  // namespace lodviz::workload
