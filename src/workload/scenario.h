#ifndef LODVIZ_WORKLOAD_SCENARIO_H_
#define LODVIZ_WORKLOAD_SCENARIO_H_

#include <cstdint>
#include <vector>

#include "geo/tiles.h"
#include "viz/m4.h"

namespace lodviz::workload {

/// A value-range query [lo, hi).
struct RangeQuery {
  double lo = 0.0;
  double hi = 0.0;
};

/// Generates an exploratory range-query session over the domain
/// [domain_lo, domain_hi): the user starts with broad overview queries,
/// then zooms into focus regions with pans, occasionally jumping to a new
/// focus — the access locality that makes adaptive indexing pay off (E4).
std::vector<RangeQuery> ExplorationRangeScenario(double domain_lo,
                                                 double domain_hi,
                                                 size_t num_queries,
                                                 uint64_t seed);

/// Generates a pan/zoom tile session at mixed zoom levels: runs of
/// directional panning (momentum) punctuated by zoom in/out — the access
/// pattern behind the cache/prefetch experiment (E8).
std::vector<geo::TileKey> PanZoomTileScenario(uint8_t max_zoom,
                                              size_t num_requests,
                                              uint64_t seed);

/// Random-walk time series of `n` points (t = 0..n-1) for the M4
/// experiments (E2).
std::vector<viz::Sample> RandomWalkSeries(size_t n, uint64_t seed);

}  // namespace lodviz::workload

#endif  // LODVIZ_WORKLOAD_SCENARIO_H_
