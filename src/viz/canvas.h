#ifndef LODVIZ_VIZ_CANVAS_H_
#define LODVIZ_VIZ_CANVAS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geometry.h"

namespace lodviz::viz {

/// Headless pixel raster: each cell counts how many marks hit it. This is
/// the measuring instrument for the survey's "squeeze a billion records
/// into a million pixels" argument [119] — over-plotting is visible as
/// counts > 1, and the benefit of aggregation as bounded drawn elements.
///
/// Coordinates are unit-square doubles; (0,0) is bottom-left.
class Canvas {
 public:
  Canvas(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  void Clear();

  /// Marks the pixel containing (x, y) in unit coordinates.
  void DrawPoint(double x, double y);

  /// Draws a line between unit-space endpoints (DDA).
  void DrawLine(double x0, double y0, double x1, double y1);

  /// Fills the axis-aligned rectangle (unit space).
  void FillRect(const geo::Rect& r);

  /// Marks the outline of a circle (unit space, radius in unit units).
  void DrawCircle(double cx, double cy, double radius);

  uint32_t At(int px, int py) const { return cells_[Index(px, py)]; }

  /// Number of marks drawn (sum of all counts).
  uint64_t total_marks() const { return total_marks_; }
  /// Pixels with at least one mark.
  uint64_t pixels_touched() const;
  /// Mean marks per touched pixel; > 1 means over-plotting.
  double OverplotFactor() const;
  /// Max marks on a single pixel.
  uint32_t MaxCount() const;
  /// Fraction of marks that are invisible because they share a pixel with
  /// earlier marks (the information silently lost to over-plotting).
  double HiddenMarkFraction() const;

  /// Low-res ASCII art (density shading) for CLI examples.
  std::string ToAscii(int max_cols = 80) const;

 private:
  size_t Index(int px, int py) const {
    return static_cast<size_t>(py) * width_ + px;
  }
  void Mark(int px, int py);

  int width_;
  int height_;
  std::vector<uint32_t> cells_;
  uint64_t total_marks_ = 0;
};

}  // namespace lodviz::viz

#endif  // LODVIZ_VIZ_CANVAS_H_
