#include "viz/m4.h"

#include <algorithm>

namespace lodviz::viz {

std::vector<Sample> M4Downsample(const std::vector<Sample>& samples,
                                 int pixel_width) {
  if (samples.empty() || pixel_width <= 0) return {};
  double t0 = samples.front().t;
  double t1 = samples.back().t;
  double span = std::max(1e-300, t1 - t0);

  struct ColumnAgg {
    bool any = false;
    size_t first = 0, last = 0, min = 0, max = 0;  // indexes into samples
  };
  std::vector<ColumnAgg> columns(pixel_width);
  for (size_t i = 0; i < samples.size(); ++i) {
    int col = static_cast<int>((samples[i].t - t0) / span * pixel_width);
    col = std::clamp(col, 0, pixel_width - 1);
    ColumnAgg& agg = columns[col];
    if (!agg.any) {
      agg.any = true;
      agg.first = agg.last = agg.min = agg.max = i;
      continue;
    }
    agg.last = i;
    if (samples[i].v < samples[agg.min].v) agg.min = i;
    if (samples[i].v > samples[agg.max].v) agg.max = i;
  }

  std::vector<size_t> keep;
  for (const ColumnAgg& agg : columns) {
    if (!agg.any) continue;
    keep.push_back(agg.first);
    keep.push_back(agg.min);
    keep.push_back(agg.max);
    keep.push_back(agg.last);
  }
  std::sort(keep.begin(), keep.end());
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());

  std::vector<Sample> out;
  out.reserve(keep.size());
  for (size_t i : keep) out.push_back(samples[i]);
  return out;
}

std::vector<Sample> StrideDownsample(const std::vector<Sample>& samples,
                                     size_t max_points) {
  if (samples.size() <= max_points || max_points == 0) return samples;
  std::vector<Sample> out;
  out.reserve(max_points);
  for (size_t k = 0; k < max_points; ++k) {
    out.push_back(samples[k * samples.size() / max_points]);
  }
  out.back() = samples.back();
  return out;
}

}  // namespace lodviz::viz
