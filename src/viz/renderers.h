#ifndef LODVIZ_VIZ_RENDERERS_H_
#define LODVIZ_VIZ_RENDERERS_H_

#include <string>
#include <vector>

#include "geo/geometry.h"
#include "graph/graph.h"
#include "graph/layout.h"
#include "hier/hetree.h"
#include "viz/canvas.h"
#include "viz/m4.h"

namespace lodviz::viz {

/// What a renderer actually drew — the unit the "visual scalability"
/// experiments count.
struct RenderStats {
  uint64_t elements_drawn = 0;  ///< marks/shapes issued
  uint64_t input_size = 0;      ///< data objects the renderer received
};

/// Scatter plot of (x, y) pairs normalized into the canvas.
RenderStats RenderScatter(Canvas* canvas,
                          const std::vector<geo::Point>& points);

/// Polyline chart of a (sorted-by-t) series.
RenderStats RenderLineChart(Canvas* canvas, const std::vector<Sample>& series);

/// Vertical bars for `values` (e.g. histogram bin counts).
RenderStats RenderBars(Canvas* canvas, const std::vector<double>& values);

/// Timeline: events as ticks on a horizontal time axis with stacking.
RenderStats RenderTimeline(Canvas* canvas, const std::vector<double>& times);

/// Map: lon/lat degrees projected equirectangularly.
struct GeoPoint {
  double lon = 0.0;
  double lat = 0.0;
};
RenderStats RenderMap(Canvas* canvas, const std::vector<GeoPoint>& points);

/// Clustered map (marker clustering, the standard scalable-map reduction):
/// points are aggregated on a grid and each non-empty cell is drawn as one
/// circle sized by sqrt(count) — drawn elements bounded by grid_size^2
/// regardless of input size.
RenderStats RenderClusteredMap(Canvas* canvas,
                               const std::vector<GeoPoint>& points,
                               int grid_size = 32);

/// Node-link rendering of a laid-out graph (points + edge lines).
RenderStats RenderGraph(Canvas* canvas, const graph::Graph& g,
                        const graph::Layout& layout);

/// Squarified treemap over weights; also returns the computed rectangles
/// (unit space) for downstream use.
struct TreemapCell {
  geo::Rect rect;
  double weight = 0.0;
  size_t index = 0;
};
std::vector<TreemapCell> SquarifiedTreemap(const std::vector<double>& weights,
                                           const geo::Rect& area);
RenderStats RenderTreemap(Canvas* canvas, const std::vector<double>& weights);

/// Renders one level of a HETree as bars (the SynopsViz overview view):
/// one bar per visible node, height = count.
RenderStats RenderHETreeLevel(Canvas* canvas, hier::HETree* tree,
                              uint32_t depth);

}  // namespace lodviz::viz

#endif  // LODVIZ_VIZ_RENDERERS_H_
