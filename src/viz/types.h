#ifndef LODVIZ_VIZ_TYPES_H_
#define LODVIZ_VIZ_TYPES_H_

#include <string>
#include <string_view>
#include <vector>

namespace lodviz::viz {

/// The data-type taxonomy of the survey's Table 1:
/// N(umeric), T(emporal), S(patial), H(ierarchical), G(raph).
enum class DataType : uint8_t {
  kNumeric,
  kTemporal,
  kSpatial,
  kHierarchical,
  kGraph,
};

/// One-letter code used in the regenerated Table 1 ("N", "T", ...).
std::string_view DataTypeCode(DataType t);
std::string_view DataTypeName(DataType t);

/// The visualization-type taxonomy of Tables 1 and 2 (the tables' legend:
/// B, C, CI, G, M, P, PC, S, SG, T, TL, TR) plus line/bar split used
/// internally.
enum class VisKind : uint8_t {
  kBubbleChart,     // B
  kChart,           // C (bar/line/column charts)
  kCircles,         // CI
  kGraph,           // G (node-link)
  kMap,             // M
  kPie,             // P
  kParallelCoords,  // PC
  kScatter,         // S
  kStreamgraph,     // SG
  kTreemap,         // T
  kTimeline,        // TL
  kTree,            // TR
};

/// The code used in the paper's tables ("B", "C", "CI", ...).
std::string_view VisKindCode(VisKind k);
std::string_view VisKindName(VisKind k);

/// A declarative visualization specification (the "visualization
/// abstraction" stage of LDVM): what to draw, over which properties.
struct VisSpec {
  VisKind kind = VisKind::kChart;
  std::string title;
  /// Property IRIs bound to the spec (x, y, value, ... depending on kind).
  std::string x_property;
  std::string y_property;
  /// Optional categorical property for grouping/coloring.
  std::string group_property;
  /// Number of bins/points budgeted (ties to approximation settings).
  size_t element_budget = 0;
};

}  // namespace lodviz::viz

#endif  // LODVIZ_VIZ_TYPES_H_
