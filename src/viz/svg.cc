#include "viz/svg.h"

#include <cstdio>
#include <fstream>

namespace lodviz::viz {

namespace {

std::string EscapeXml(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

SvgWriter::SvgWriter(int width, int height) : width_(width), height_(height) {}

void SvgWriter::Circle(double cx, double cy, double radius_px,
                       const std::string& fill, double opacity) {
  elements_.push_back("<circle cx=\"" + Num(X(cx)) + "\" cy=\"" + Num(Y(cy)) +
                      "\" r=\"" + Num(radius_px) + "\" fill=\"" + fill +
                      "\" fill-opacity=\"" + Num(opacity) + "\"/>");
}

void SvgWriter::Line(double x0, double y0, double x1, double y1,
                     const std::string& stroke, double stroke_width,
                     double opacity) {
  elements_.push_back("<line x1=\"" + Num(X(x0)) + "\" y1=\"" + Num(Y(y0)) +
                      "\" x2=\"" + Num(X(x1)) + "\" y2=\"" + Num(Y(y1)) +
                      "\" stroke=\"" + stroke + "\" stroke-width=\"" +
                      Num(stroke_width) + "\" stroke-opacity=\"" +
                      Num(opacity) + "\"/>");
}

void SvgWriter::Rect(const geo::Rect& r, const std::string& fill,
                     const std::string& stroke) {
  elements_.push_back(
      "<rect x=\"" + Num(X(r.min_x)) + "\" y=\"" + Num(Y(r.max_y)) +
      "\" width=\"" + Num((r.max_x - r.min_x) * width_) + "\" height=\"" +
      Num((r.max_y - r.min_y) * height_) + "\" fill=\"" + fill +
      "\" stroke=\"" + stroke + "\"/>");
}

void SvgWriter::Polyline(const std::vector<geo::Point>& points,
                         const std::string& stroke, double stroke_width,
                         double opacity) {
  std::string attr = "<polyline fill=\"none\" stroke=\"" + stroke +
                     "\" stroke-width=\"" + Num(stroke_width) +
                     "\" stroke-opacity=\"" + Num(opacity) + "\" points=\"";
  for (const geo::Point& p : points) {
    attr += Num(X(p.x)) + "," + Num(Y(p.y)) + " ";
  }
  attr += "\"/>";
  elements_.push_back(std::move(attr));
}

void SvgWriter::Text(double x, double y, const std::string& text,
                     int font_size, const std::string& fill) {
  elements_.push_back("<text x=\"" + Num(X(x)) + "\" y=\"" + Num(Y(y)) +
                      "\" font-size=\"" + std::to_string(font_size) +
                      "\" fill=\"" + fill + "\" font-family=\"sans-serif\">" +
                      EscapeXml(text) + "</text>");
}

std::string SvgWriter::ToString() const {
  std::string out = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    std::to_string(width_) + "\" height=\"" +
                    std::to_string(height_) + "\">\n";
  out += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const std::string& e : elements_) {
    out += e;
    out += '\n';
  }
  out += "</svg>\n";
  return out;
}

bool SvgWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << ToString();
  return static_cast<bool>(out);
}

}  // namespace lodviz::viz
