#include "viz/canvas.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lodviz::viz {

Canvas::Canvas(int width, int height) : width_(width), height_(height) {
  LODVIZ_CHECK(width > 0 && height > 0);
  cells_.assign(static_cast<size_t>(width) * height, 0);
}

void Canvas::Clear() {
  std::fill(cells_.begin(), cells_.end(), 0);
  total_marks_ = 0;
}

void Canvas::Mark(int px, int py) {
  if (px < 0 || py < 0 || px >= width_ || py >= height_) return;
  ++cells_[Index(px, py)];
  ++total_marks_;
}

void Canvas::DrawPoint(double x, double y) {
  int px = static_cast<int>(x * width_);
  int py = static_cast<int>(y * height_);
  Mark(std::clamp(px, 0, width_ - 1), std::clamp(py, 0, height_ - 1));
}

void Canvas::DrawLine(double x0, double y0, double x1, double y1) {
  double px0 = x0 * width_, py0 = y0 * height_;
  double px1 = x1 * width_, py1 = y1 * height_;
  double dx = px1 - px0, dy = py1 - py0;
  int steps = static_cast<int>(std::max(std::abs(dx), std::abs(dy))) + 1;
  for (int s = 0; s <= steps; ++s) {
    double t = static_cast<double>(s) / steps;
    int px = static_cast<int>(px0 + dx * t);
    int py = static_cast<int>(py0 + dy * t);
    Mark(std::clamp(px, 0, width_ - 1), std::clamp(py, 0, height_ - 1));
  }
}

void Canvas::FillRect(const geo::Rect& r) {
  int x0 = std::clamp(static_cast<int>(r.min_x * width_), 0, width_ - 1);
  int x1 = std::clamp(static_cast<int>(std::ceil(r.max_x * width_)) - 1, 0,
                      width_ - 1);
  int y0 = std::clamp(static_cast<int>(r.min_y * height_), 0, height_ - 1);
  int y1 = std::clamp(static_cast<int>(std::ceil(r.max_y * height_)) - 1, 0,
                      height_ - 1);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) Mark(x, y);
  }
}

void Canvas::DrawCircle(double cx, double cy, double radius) {
  int steps = std::max(8, static_cast<int>(radius * width_ * 6));
  for (int s = 0; s < steps; ++s) {
    double angle = 2.0 * M_PI * s / steps;
    DrawPoint(cx + radius * std::cos(angle), cy + radius * std::sin(angle));
  }
}

uint64_t Canvas::pixels_touched() const {
  uint64_t n = 0;
  for (uint32_t c : cells_) n += (c > 0);
  return n;
}

double Canvas::OverplotFactor() const {
  uint64_t touched = pixels_touched();
  return touched ? static_cast<double>(total_marks_) /
                       static_cast<double>(touched)
                 : 0.0;
}

uint32_t Canvas::MaxCount() const {
  uint32_t best = 0;
  for (uint32_t c : cells_) best = std::max(best, c);
  return best;
}

double Canvas::HiddenMarkFraction() const {
  if (total_marks_ == 0) return 0.0;
  uint64_t hidden = total_marks_ - pixels_touched();
  return static_cast<double>(hidden) / static_cast<double>(total_marks_);
}

std::string Canvas::ToAscii(int max_cols) const {
  static const char kShades[] = " .:-=+*#%@";
  int cols = std::min(max_cols, width_);
  int rows = std::max(1, cols * height_ / width_ / 2);  // chars are tall
  std::string out;
  for (int r = rows - 1; r >= 0; --r) {
    for (int c = 0; c < cols; ++c) {
      // Aggregate the cell block.
      int x0 = c * width_ / cols, x1 = (c + 1) * width_ / cols;
      int y0 = r * height_ / rows, y1 = (r + 1) * height_ / rows;
      uint64_t sum = 0;
      for (int y = y0; y < std::max(y0 + 1, y1); ++y) {
        for (int x = x0; x < std::max(x0 + 1, x1); ++x) {
          sum += cells_[Index(std::min(x, width_ - 1), std::min(y, height_ - 1))];
        }
      }
      int shade = 0;
      if (sum > 0) {
        shade = 1 + std::min<int>(8, static_cast<int>(std::log2(
                                         static_cast<double>(sum) + 1)));
      }
      out += kShades[shade];
    }
    out += '\n';
  }
  return out;
}

}  // namespace lodviz::viz
