#include "viz/types.h"

namespace lodviz::viz {

std::string_view DataTypeCode(DataType t) {
  switch (t) {
    case DataType::kNumeric:
      return "N";
    case DataType::kTemporal:
      return "T";
    case DataType::kSpatial:
      return "S";
    case DataType::kHierarchical:
      return "H";
    case DataType::kGraph:
      return "G";
  }
  return "?";
}

std::string_view DataTypeName(DataType t) {
  switch (t) {
    case DataType::kNumeric:
      return "numeric";
    case DataType::kTemporal:
      return "temporal";
    case DataType::kSpatial:
      return "spatial";
    case DataType::kHierarchical:
      return "hierarchical";
    case DataType::kGraph:
      return "graph";
  }
  return "?";
}

std::string_view VisKindCode(VisKind k) {
  switch (k) {
    case VisKind::kBubbleChart:
      return "B";
    case VisKind::kChart:
      return "C";
    case VisKind::kCircles:
      return "CI";
    case VisKind::kGraph:
      return "G";
    case VisKind::kMap:
      return "M";
    case VisKind::kPie:
      return "P";
    case VisKind::kParallelCoords:
      return "PC";
    case VisKind::kScatter:
      return "S";
    case VisKind::kStreamgraph:
      return "SG";
    case VisKind::kTreemap:
      return "T";
    case VisKind::kTimeline:
      return "TL";
    case VisKind::kTree:
      return "TR";
  }
  return "?";
}

std::string_view VisKindName(VisKind k) {
  switch (k) {
    case VisKind::kBubbleChart:
      return "bubble chart";
    case VisKind::kChart:
      return "chart";
    case VisKind::kCircles:
      return "circles";
    case VisKind::kGraph:
      return "graph";
    case VisKind::kMap:
      return "map";
    case VisKind::kPie:
      return "pie";
    case VisKind::kParallelCoords:
      return "parallel coordinates";
    case VisKind::kScatter:
      return "scatter";
    case VisKind::kStreamgraph:
      return "streamgraph";
    case VisKind::kTreemap:
      return "treemap";
    case VisKind::kTimeline:
      return "timeline";
    case VisKind::kTree:
      return "tree";
  }
  return "?";
}

}  // namespace lodviz::viz
