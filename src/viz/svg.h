#ifndef LODVIZ_VIZ_SVG_H_
#define LODVIZ_VIZ_SVG_H_

#include <string>
#include <vector>

#include "geo/geometry.h"

namespace lodviz::viz {

/// Minimal SVG document builder so examples can export real, viewable
/// visualizations without a GUI. Input coordinates are unit-space;
/// y is flipped so (0,0) is bottom-left like Canvas.
class SvgWriter {
 public:
  SvgWriter(int width, int height);

  void Circle(double cx, double cy, double radius_px,
              const std::string& fill = "#1f77b4", double opacity = 1.0);
  void Line(double x0, double y0, double x1, double y1,
            const std::string& stroke = "#555", double stroke_width = 1.0,
            double opacity = 1.0);
  void Rect(const geo::Rect& r, const std::string& fill = "#1f77b4",
            const std::string& stroke = "none");
  void Polyline(const std::vector<geo::Point>& points,
                const std::string& stroke = "#1f77b4",
                double stroke_width = 1.0, double opacity = 1.0);
  void Text(double x, double y, const std::string& text, int font_size = 12,
            const std::string& fill = "#222");

  /// Complete SVG document.
  std::string ToString() const;

  /// Writes the document to `path`; false on I/O failure.
  bool WriteFile(const std::string& path) const;

  size_t num_elements() const { return elements_.size(); }

 private:
  double X(double x) const { return x * width_; }
  double Y(double y) const { return (1.0 - y) * height_; }

  int width_;
  int height_;
  std::vector<std::string> elements_;
};

}  // namespace lodviz::viz

#endif  // LODVIZ_VIZ_SVG_H_
