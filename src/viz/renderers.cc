#include "viz/renderers.h"

#include <algorithm>
#include <cmath>

#include "geo/projection.h"

namespace lodviz::viz {

namespace {

/// Normalizes values into [0, 1] (degenerate spans map to 0.5).
struct Normalizer {
  double lo = 0.0;
  double span = 1.0;

  static Normalizer For(double min_v, double max_v) {
    Normalizer n;
    n.lo = min_v;
    n.span = max_v - min_v;
    if (n.span <= 0) n.span = 1.0;
    return n;
  }
  double operator()(double v) const { return (v - lo) / span; }
};

}  // namespace

RenderStats RenderScatter(Canvas* canvas,
                          const std::vector<geo::Point>& points) {
  RenderStats stats;
  stats.input_size = points.size();
  if (points.empty()) return stats;
  geo::Rect bounds = geo::Rect::Empty();
  for (const geo::Point& p : points) bounds.Expand(p);
  Normalizer nx = Normalizer::For(bounds.min_x, bounds.max_x);
  Normalizer ny = Normalizer::For(bounds.min_y, bounds.max_y);
  for (const geo::Point& p : points) {
    canvas->DrawPoint(nx(p.x), ny(p.y));
    ++stats.elements_drawn;
  }
  return stats;
}

RenderStats RenderLineChart(Canvas* canvas,
                            const std::vector<Sample>& series) {
  RenderStats stats;
  stats.input_size = series.size();
  if (series.size() < 2) return stats;
  double vmin = series.front().v, vmax = series.front().v;
  for (const Sample& s : series) {
    vmin = std::min(vmin, s.v);
    vmax = std::max(vmax, s.v);
  }
  Normalizer nt = Normalizer::For(series.front().t, series.back().t);
  Normalizer nv = Normalizer::For(vmin, vmax);
  for (size_t i = 1; i < series.size(); ++i) {
    canvas->DrawLine(nt(series[i - 1].t), nv(series[i - 1].v),
                     nt(series[i].t), nv(series[i].v));
    ++stats.elements_drawn;
  }
  return stats;
}

RenderStats RenderBars(Canvas* canvas, const std::vector<double>& values) {
  RenderStats stats;
  stats.input_size = values.size();
  if (values.empty()) return stats;
  double vmax = *std::max_element(values.begin(), values.end());
  if (vmax <= 0) vmax = 1.0;
  double bar_width = 1.0 / static_cast<double>(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    double h = std::max(0.0, values[i]) / vmax;
    geo::Rect bar{i * bar_width + bar_width * 0.1, 0.0,
                  (i + 1) * bar_width - bar_width * 0.1, h};
    canvas->FillRect(bar);
    ++stats.elements_drawn;
  }
  return stats;
}

RenderStats RenderTimeline(Canvas* canvas, const std::vector<double>& times) {
  RenderStats stats;
  stats.input_size = times.size();
  if (times.empty()) return stats;
  auto [mn, mx] = std::minmax_element(times.begin(), times.end());
  Normalizer nt = Normalizer::For(*mn, *mx);
  // Stack repeated ticks upward within a small jitter-free lane system.
  std::vector<int> lane_count(canvas->width(), 0);
  for (double t : times) {
    double x = nt(t);
    int px = std::clamp(static_cast<int>(x * canvas->width()), 0,
                        canvas->width() - 1);
    double y = 0.05 + 0.9 * (lane_count[px] % 20) / 20.0;
    ++lane_count[px];
    canvas->DrawPoint(x, y);
    ++stats.elements_drawn;
  }
  return stats;
}

RenderStats RenderMap(Canvas* canvas, const std::vector<GeoPoint>& points) {
  RenderStats stats;
  stats.input_size = points.size();
  for (const GeoPoint& p : points) {
    geo::Point projected = geo::ProjectEquirectangular(p.lon, p.lat);
    canvas->DrawPoint(projected.x, projected.y);
    ++stats.elements_drawn;
  }
  return stats;
}

RenderStats RenderClusteredMap(Canvas* canvas,
                               const std::vector<GeoPoint>& points,
                               int grid_size) {
  RenderStats stats;
  stats.input_size = points.size();
  if (points.empty() || grid_size <= 0) return stats;
  std::vector<uint64_t> counts(static_cast<size_t>(grid_size) * grid_size, 0);
  for (const GeoPoint& p : points) {
    geo::Point projected = geo::ProjectEquirectangular(p.lon, p.lat);
    int cx = std::clamp(static_cast<int>(projected.x * grid_size), 0,
                        grid_size - 1);
    int cy = std::clamp(static_cast<int>(projected.y * grid_size), 0,
                        grid_size - 1);
    ++counts[static_cast<size_t>(cy) * grid_size + cx];
  }
  uint64_t max_count = 1;
  for (uint64_t c : counts) max_count = std::max(max_count, c);
  double cell = 1.0 / grid_size;
  for (int cy = 0; cy < grid_size; ++cy) {
    for (int cx = 0; cx < grid_size; ++cx) {
      uint64_t count = counts[static_cast<size_t>(cy) * grid_size + cx];
      if (count == 0) continue;
      double radius = 0.5 * cell *
                      std::sqrt(static_cast<double>(count) /
                                static_cast<double>(max_count));
      canvas->DrawCircle((cx + 0.5) * cell, (cy + 0.5) * cell,
                         std::max(radius, cell * 0.05));
      ++stats.elements_drawn;
    }
  }
  return stats;
}

RenderStats RenderGraph(Canvas* canvas, const graph::Graph& g,
                        const graph::Layout& layout) {
  RenderStats stats;
  stats.input_size = g.num_nodes() + g.num_edges();
  for (const auto& [u, v] : g.edges()) {
    canvas->DrawLine(layout[u].x, layout[u].y, layout[v].x, layout[v].y);
    ++stats.elements_drawn;
  }
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    canvas->DrawPoint(layout[u].x, layout[u].y);
    ++stats.elements_drawn;
  }
  return stats;
}

std::vector<TreemapCell> SquarifiedTreemap(const std::vector<double>& weights,
                                           const geo::Rect& area) {
  // Squarify (Bruls et al.): lay out rows greedily, keeping aspect ratios
  // near 1. Weights are normalized to the area.
  std::vector<size_t> order(weights.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return weights[a] > weights[b];
  });

  double total = 0;
  for (double w : weights) total += std::max(0.0, w);
  std::vector<TreemapCell> cells;
  if (total <= 0 || weights.empty()) return cells;
  double scale = area.Area() / total;

  geo::Rect remaining = area;
  size_t i = 0;
  while (i < order.size()) {
    bool horizontal = remaining.Width() >= remaining.Height();
    double side = horizontal ? remaining.Height() : remaining.Width();
    // Grow the row while the worst aspect ratio improves.
    double row_sum = 0.0;
    size_t row_end = i;
    double worst = std::numeric_limits<double>::infinity();
    while (row_end < order.size()) {
      double w = std::max(1e-12, weights[order[row_end]] * scale);
      double new_sum = row_sum + w;
      double row_thickness = new_sum / std::max(1e-12, side);
      double new_worst = 1.0;
      double offset_sum = 0.0;
      for (size_t j = i; j <= row_end; ++j) {
        double wj = std::max(1e-12, weights[order[j]] * scale);
        double len = wj / std::max(1e-12, row_thickness);
        double aspect = std::max(len / row_thickness, row_thickness / len);
        new_worst = std::max(new_worst, aspect);
        offset_sum += len;
      }
      (void)offset_sum;
      if (new_worst > worst && row_end > i) break;
      worst = new_worst;
      row_sum = new_sum;
      ++row_end;
    }
    // Lay the row along the short side.
    double thickness = row_sum / std::max(1e-12, side);
    double offset = 0.0;
    for (size_t j = i; j < row_end; ++j) {
      double wj = std::max(1e-12, weights[order[j]] * scale);
      double len = wj / std::max(1e-12, thickness);
      TreemapCell cell;
      cell.index = order[j];
      cell.weight = weights[order[j]];
      if (horizontal) {
        cell.rect = {remaining.min_x, remaining.min_y + offset,
                     remaining.min_x + thickness,
                     remaining.min_y + offset + len};
      } else {
        cell.rect = {remaining.min_x + offset, remaining.min_y,
                     remaining.min_x + offset + len,
                     remaining.min_y + thickness};
      }
      cells.push_back(cell);
      offset += len;
    }
    if (horizontal) {
      remaining.min_x += thickness;
    } else {
      remaining.min_y += thickness;
    }
    i = row_end;
  }
  return cells;
}

RenderStats RenderTreemap(Canvas* canvas, const std::vector<double>& weights) {
  RenderStats stats;
  stats.input_size = weights.size();
  for (const TreemapCell& cell : SquarifiedTreemap(weights, {0, 0, 1, 1})) {
    canvas->FillRect(cell.rect);
    ++stats.elements_drawn;
  }
  return stats;
}

RenderStats RenderHETreeLevel(Canvas* canvas, hier::HETree* tree,
                              uint32_t depth) {
  RenderStats stats;
  std::vector<double> counts;
  for (auto id : tree->NodesAtDepth(depth)) {
    counts.push_back(static_cast<double>(tree->node(id).stats.count));
  }
  stats = RenderBars(canvas, counts);
  stats.input_size = tree->num_items();
  return stats;
}

}  // namespace lodviz::viz
