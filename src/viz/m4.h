#ifndef LODVIZ_VIZ_M4_H_
#define LODVIZ_VIZ_M4_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lodviz::viz {

/// A time-series sample.
struct Sample {
  double t = 0.0;
  double v = 0.0;
};

/// M4 aggregation (VDDA [73, 74]): for a line chart w pixels wide, keep
/// only min/max/first/last of each pixel column. The rendered line is
/// pixel-identical to drawing every raw point, with at most 4w points —
/// the "pixel-perfect" data reduction the survey cites for
/// visualization-driven query rewriting.
///
/// `samples` must be sorted by t. Returns samples sorted by t.
std::vector<Sample> M4Downsample(const std::vector<Sample>& samples,
                                 int pixel_width);

/// Naive every-k-th-point downsampling to the same point budget —
/// the baseline M4 beats in E2.
std::vector<Sample> StrideDownsample(const std::vector<Sample>& samples,
                                     size_t max_points);

}  // namespace lodviz::viz

#endif  // LODVIZ_VIZ_M4_H_
