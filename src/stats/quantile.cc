#include "stats/quantile.h"

#include <algorithm>
#include <cmath>

namespace lodviz::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  desired_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  increments_ = {0, q / 2, q, (1 + q) / 2, 1};
  positions_ = {1, 2, 3, 4, 5};
}

double P2Quantile::Parabolic(int i, double d) const {
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::Linear(int i, double d) const {
  int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) std::sort(heights_.begin(), heights_.end());
    return;
  }
  ++count_;

  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x < heights_[1]) {
    k = 0;
  } else if (x < heights_[2]) {
    k = 1;
  } else if (x < heights_[3]) {
    k = 2;
  } else if (x <= heights_[4]) {
    k = 3;
  } else {
    heights_[4] = x;
    k = 3;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    double d = desired_[i] - positions_[i];
    if ((d >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (d <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      double ds = d >= 0 ? 1.0 : -1.0;
      double candidate = Parabolic(i, ds);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        heights_[i] = Linear(i, ds);
      }
      positions_[i] += ds;
    }
  }
}

double P2Quantile::Estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile over the sorted prefix.
    std::array<double, 5> tmp = heights_;
    std::sort(tmp.begin(), tmp.begin() + count_);
    size_t idx = static_cast<size_t>(q_ * static_cast<double>(count_ - 1));
    return tmp[idx];
  }
  return heights_[2];
}

}  // namespace lodviz::stats
