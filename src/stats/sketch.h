#ifndef LODVIZ_STATS_SKETCH_H_
#define LODVIZ_STATS_SKETCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lodviz::stats {

/// 64-bit FNV-1a, the hash shared by the sketches below.
uint64_t Fnv1aHash(std::string_view data, uint64_t seed = 1469598103934665603ULL);
uint64_t Fnv1aHash64(uint64_t value, uint64_t seed = 1469598103934665603ULL);

/// Count-Min sketch: sublinear-memory frequency estimates with one-sided
/// error (never under-counts). Backs heavy-hitter detection over
/// predicates/values without materializing exact counts.
class CountMinSketch {
 public:
  /// width: counters per row (error ~ 2N/width); depth: rows
  /// (failure prob ~ 2^-depth).
  CountMinSketch(size_t width, size_t depth);

  void Add(uint64_t item, uint64_t count = 1);
  void AddString(std::string_view item, uint64_t count = 1);

  /// Estimated count (>= true count).
  uint64_t Estimate(uint64_t item) const;
  uint64_t EstimateString(std::string_view item) const;

  size_t width() const { return width_; }
  size_t depth() const { return depth_; }
  uint64_t total() const { return total_; }
  size_t MemoryUsage() const { return table_.size() * sizeof(uint64_t); }

 private:
  size_t Index(size_t row, uint64_t hash) const;

  size_t width_;
  size_t depth_;
  uint64_t total_ = 0;
  std::vector<uint64_t> table_;  // depth_ rows of width_ counters
};

/// HyperLogLog distinct-count estimator (~1.04/sqrt(2^precision) relative
/// error). Used for cheap per-property distinct counts in dataset profiles.
class HyperLogLog {
 public:
  /// precision in [4, 18]; 2^precision registers.
  explicit HyperLogLog(int precision = 12);

  void Add(uint64_t item);
  void AddString(std::string_view item);

  /// Estimated number of distinct items added.
  double Estimate() const;

  /// Merges another sketch with the same precision.
  void Merge(const HyperLogLog& other);

  int precision() const { return precision_; }
  size_t MemoryUsage() const { return registers_.size(); }

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace lodviz::stats

#endif  // LODVIZ_STATS_SKETCH_H_
