#ifndef LODVIZ_STATS_QUANTILE_H_
#define LODVIZ_STATS_QUANTILE_H_

#include <array>
#include <cstdint>

namespace lodviz::stats {

/// P² (Jain & Chlamtac) streaming quantile estimator: O(1) memory per
/// tracked quantile, no stored samples. Used for approximate medians /
/// percentiles in dataset profiles and progressive answers.
class P2Quantile {
 public:
  /// q in (0, 1), e.g. 0.5 for the median.
  explicit P2Quantile(double q);

  void Add(double x);

  /// Current estimate; exact until 5 observations, then P² interpolation.
  double Estimate() const;

  uint64_t count() const { return count_; }
  double quantile() const { return q_; }

 private:
  double Parabolic(int i, double d) const;
  double Linear(int i, double d) const;

  double q_;
  uint64_t count_ = 0;
  std::array<double, 5> heights_{};   // marker heights
  std::array<double, 5> positions_{}; // actual marker positions
  std::array<double, 5> desired_{};   // desired marker positions
  std::array<double, 5> increments_{};
};

}  // namespace lodviz::stats

#endif  // LODVIZ_STATS_QUANTILE_H_
