#include "stats/profile.h"

#include <algorithm>
#include <unordered_map>

#include "rdf/vocab.h"
#include "stats/sampler.h"
#include "stats/sketch.h"

namespace lodviz::stats {

std::string_view ValueKindToString(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNumeric:
      return "numeric";
    case ValueKind::kTemporal:
      return "temporal";
    case ValueKind::kCategorical:
      return "categorical";
    case ValueKind::kText:
      return "text";
    case ValueKind::kEntity:
      return "entity";
  }
  return "?";
}

const PropertyProfile* DatasetProfile::FindProperty(
    std::string_view iri) const {
  for (const PropertyProfile& p : properties) {
    if (p.predicate_iri == iri) return &p;
  }
  return nullptr;
}

Result<PropertyProfile> ProfileProperty(const rdf::TripleStore& store,
                                        rdf::TermId predicate,
                                        const ProfilerOptions& options) {
  const rdf::Dictionary& dict = store.dict();
  if (!dict.Contains(predicate)) {
    return Status::NotFound("predicate id not in dictionary");
  }
  PropertyProfile profile;
  profile.predicate = predicate;
  profile.predicate_iri = dict.term(predicate).lexical;

  ReservoirSampler<rdf::TermId> reservoir(options.sample_per_predicate,
                                          options.seed);
  HyperLogLog distinct(12);
  rdf::TriplePattern pat(rdf::kInvalidTermId, predicate, rdf::kInvalidTermId);
  store.Scan(pat, [&](const rdf::Triple& t) {
    ++profile.count;
    reservoir.Add(t.o);
    distinct.Add(t.o);
    return true;
  });
  profile.distinct_estimate = distinct.Estimate();
  if (profile.count == 0) return profile;

  // Classify sampled objects.
  uint64_t numeric = 0, temporal = 0, entity = 0, other = 0;
  std::unordered_map<rdf::TermId, uint64_t> value_counts;
  for (rdf::TermId oid : reservoir.sample()) {
    const rdf::Term& term = dict.term(oid);
    ++value_counts[oid];
    if (term.is_iri() || term.is_blank()) {
      ++entity;
    } else if (term.IsTemporalLiteral()) {
      ++temporal;
    } else if (term.IsNumericLiteral()) {
      ++numeric;
    } else {
      ++other;
    }
  }
  uint64_t sampled = reservoir.sample().size();
  auto majority = [&](uint64_t n) { return n * 2 > sampled; };
  if (majority(entity)) {
    profile.kind = ValueKind::kEntity;
  } else if (majority(temporal)) {
    profile.kind = ValueKind::kTemporal;
  } else if (majority(numeric)) {
    profile.kind = ValueKind::kNumeric;
  } else {
    double ratio = profile.distinct_estimate /
                   std::max<double>(1.0, static_cast<double>(profile.count));
    bool categorical =
        profile.distinct_estimate <=
            static_cast<double>(options.categorical_max_distinct) ||
        ratio < options.categorical_distinct_ratio;
    profile.kind = categorical ? ValueKind::kCategorical : ValueKind::kText;
  }

  // Numeric/temporal moments over the sample.
  if (profile.kind == ValueKind::kNumeric ||
      profile.kind == ValueKind::kTemporal) {
    for (rdf::TermId oid : reservoir.sample()) {
      const rdf::Term& term = dict.term(oid);
      if (profile.kind == ValueKind::kNumeric) {
        Result<double> v = term.AsDouble();
        if (v.ok()) profile.moments.Add(v.ValueOrDie());
      } else {
        Result<int64_t> v = term.AsEpochSeconds();
        if (v.ok()) profile.moments.Add(static_cast<double>(v.ValueOrDie()));
      }
    }
  }

  // Top values (categorical / entity kinds are the interesting cases).
  std::vector<std::pair<rdf::TermId, uint64_t>> sorted(value_counts.begin(),
                                                       value_counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  size_t k = std::min(options.top_k, sorted.size());
  for (size_t i = 0; i < k; ++i) {
    profile.top_values.emplace_back(dict.term(sorted[i].first).lexical,
                                    sorted[i].second);
  }

  profile.is_geo_coordinate =
      profile.predicate_iri == rdf::vocab::kGeoLat ||
      profile.predicate_iri == rdf::vocab::kGeoLong;
  return profile;
}

Result<DatasetProfile> ProfileDataset(const rdf::TripleStore& store,
                                      const ProfilerOptions& options) {
  DatasetProfile out;
  // DistinctSubjects compacts (deduplicates) the store, so take the
  // triple count afterwards for a consistent snapshot.
  out.subject_count = store.DistinctSubjects().size();
  out.triple_count = store.size();

  bool has_lat = false, has_long = false;
  for (const auto& [pred, count] : store.predicate_counts()) {
    LODVIZ_ASSIGN_OR_RETURN(PropertyProfile profile,
                            ProfileProperty(store, pred, options));
    if (profile.predicate_iri == rdf::vocab::kGeoLat) has_lat = true;
    if (profile.predicate_iri == rdf::vocab::kGeoLong) has_long = true;
    if (profile.predicate_iri == rdf::vocab::kRdfsSubClassOf && count > 0) {
      out.has_class_hierarchy = true;
    }
    if (profile.kind == ValueKind::kEntity) {
      out.entity_link_count += profile.count;
    }
    out.properties.push_back(std::move(profile));
  }
  out.has_spatial = has_lat && has_long;
  std::sort(out.properties.begin(), out.properties.end(),
            [](const PropertyProfile& a, const PropertyProfile& b) {
              return a.predicate_iri < b.predicate_iri;
            });
  return out;
}

}  // namespace lodviz::stats
