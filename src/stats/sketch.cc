#include "stats/sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace lodviz::stats {

uint64_t Fnv1aHash(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t Fnv1aHash64(uint64_t value, uint64_t seed) {
  uint64_t h = seed;
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xFF;
    h *= 1099511628211ULL;
  }
  // Final avalanche (splitmix64 tail) to decorrelate low bits.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

CountMinSketch::CountMinSketch(size_t width, size_t depth)
    : width_(width), depth_(depth), table_(width * depth, 0) {
  LODVIZ_CHECK(width > 0 && depth > 0);
}

size_t CountMinSketch::Index(size_t row, uint64_t hash) const {
  // Double hashing: h1 + row*h2 gives pairwise-independent row hashes.
  uint64_t h1 = hash;
  uint64_t h2 = hash * 0x9E3779B97F4A7C15ULL + 0x85EBCA6B;
  return (h1 + row * (h2 | 1)) % width_;
}

void CountMinSketch::Add(uint64_t item, uint64_t count) {
  uint64_t h = Fnv1aHash64(item);
  for (size_t r = 0; r < depth_; ++r) {
    table_[r * width_ + Index(r, h)] += count;
  }
  total_ += count;
}

void CountMinSketch::AddString(std::string_view item, uint64_t count) {
  Add(Fnv1aHash(item), count);
}

uint64_t CountMinSketch::Estimate(uint64_t item) const {
  uint64_t h = Fnv1aHash64(item);
  uint64_t best = ~0ULL;
  for (size_t r = 0; r < depth_; ++r) {
    best = std::min(best, table_[r * width_ + Index(r, h)]);
  }
  return best;
}

uint64_t CountMinSketch::EstimateString(std::string_view item) const {
  return Estimate(Fnv1aHash(item));
}

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  LODVIZ_CHECK(precision >= 4 && precision <= 18);
  registers_.assign(size_t{1} << precision, 0);
}

void HyperLogLog::Add(uint64_t item) {
  uint64_t h = Fnv1aHash64(item);
  size_t idx = h >> (64 - precision_);
  uint64_t rest = (h << precision_) | (size_t{1} << (precision_ - 1));
  uint8_t rank = static_cast<uint8_t>(std::countl_zero(rest) + 1);
  registers_[idx] = std::max(registers_[idx], rank);
}

void HyperLogLog::AddString(std::string_view item) { Add(Fnv1aHash(item)); }

double HyperLogLog::Estimate() const {
  size_t m = registers_.size();
  double alpha;
  switch (m) {
    case 16:
      alpha = 0.673;
      break;
    case 32:
      alpha = 0.697;
      break;
    case 64:
      alpha = 0.709;
      break;
    default:
      alpha = 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double estimate = alpha * static_cast<double>(m) * static_cast<double>(m) / sum;
  if (estimate <= 2.5 * static_cast<double>(m) && zeros > 0) {
    // Small-range correction: linear counting.
    estimate = static_cast<double>(m) *
               std::log(static_cast<double>(m) / static_cast<double>(zeros));
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  LODVIZ_CHECK(precision_ == other.precision_)
      << "cannot merge HLLs with different precision";
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace lodviz::stats
