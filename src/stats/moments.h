#ifndef LODVIZ_STATS_MOMENTS_H_
#define LODVIZ_STATS_MOMENTS_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace lodviz::stats {

/// Streaming count/mean/variance/min/max/sum via Welford's algorithm.
/// Mergeable, so statistics roll up exactly through aggregation
/// hierarchies (HETree nodes, graph super-nodes).
class RunningMoments {
 public:
  void Add(double x) {
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another accumulator (parallel/hierarchical aggregation).
  void Merge(const RunningMoments& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    double n1 = static_cast<double>(count_);
    double n2 = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  /// Population variance.
  double variance() const {
    return count_ ? m2_ / static_cast<double>(count_) : 0.0;
  }
  /// Sample variance (n-1 denominator).
  double sample_variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const {
    return count_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return count_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Streaming Pearson correlation between paired observations.
class Correlation {
 public:
  void Add(double x, double y) {
    ++count_;
    double n = static_cast<double>(count_);
    double dx = x - mean_x_;
    double dy = y - mean_y_;
    mean_x_ += dx / n;
    mean_y_ += dy / n;
    m2x_ += dx * (x - mean_x_);
    m2y_ += dy * (y - mean_y_);
    cov_ += dx * (y - mean_y_);
  }

  uint64_t count() const { return count_; }

  /// Pearson r in [-1, 1]; 0 when degenerate.
  double Pearson() const {
    if (count_ < 2) return 0.0;
    double denom = std::sqrt(m2x_ * m2y_);
    if (denom <= 0.0) return 0.0;
    return cov_ / denom;
  }

 private:
  uint64_t count_ = 0;
  double mean_x_ = 0.0, mean_y_ = 0.0;
  double m2x_ = 0.0, m2y_ = 0.0;
  double cov_ = 0.0;
};

}  // namespace lodviz::stats

#endif  // LODVIZ_STATS_MOMENTS_H_
