#ifndef LODVIZ_STATS_SAMPLER_H_
#define LODVIZ_STATS_SAMPLER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.h"

namespace lodviz::stats {

/// Classic reservoir sampling (Vitter's algorithm R): a uniform sample of
/// fixed size k over a stream of unknown length — the data-reduction
/// primitive behind the sampling-based systems the survey cites
/// [46, 105, 2, 69, 17].
template <typename T>
class ReservoirSampler {
 public:
  ReservoirSampler(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  void Add(const T& item) {
    ++seen_;
    if (reservoir_.size() < capacity_) {
      reservoir_.push_back(item);
      return;
    }
    uint64_t j = rng_.Uniform(seen_);
    if (j < capacity_) reservoir_[j] = item;
  }

  const std::vector<T>& sample() const { return reservoir_; }
  uint64_t seen() const { return seen_; }
  size_t capacity() const { return capacity_; }

  /// Scale factor from sample aggregate to population estimate.
  double ScaleFactor() const {
    if (reservoir_.empty()) return 0.0;
    return static_cast<double>(seen_) / static_cast<double>(reservoir_.size());
  }

 private:
  size_t capacity_;
  Rng rng_;
  uint64_t seen_ = 0;
  std::vector<T> reservoir_;
};

/// Keeps each element independently with probability p (filtering-style
/// reduction; sample size is binomial).
template <typename T>
class BernoulliSampler {
 public:
  BernoulliSampler(double probability, uint64_t seed)
      : p_(probability), rng_(seed) {}

  void Add(const T& item) {
    ++seen_;
    if (rng_.Bernoulli(p_)) sample_.push_back(item);
  }

  const std::vector<T>& sample() const { return sample_; }
  uint64_t seen() const { return seen_; }
  double probability() const { return p_; }

 private:
  double p_;
  Rng rng_;
  uint64_t seen_ = 0;
  std::vector<T> sample_;
};

/// Stratified reservoir sampling: an independent reservoir per stratum key,
/// guaranteeing representation of rare groups (BlinkDB-style [2]).
template <typename T, typename Key>
class StratifiedSampler {
 public:
  StratifiedSampler(size_t per_stratum_capacity, uint64_t seed)
      : capacity_(per_stratum_capacity), seed_(seed) {}

  void Add(const Key& key, const T& item) {
    auto it = strata_.find(key);
    if (it == strata_.end()) {
      it = strata_
               .emplace(key, ReservoirSampler<T>(
                                 capacity_, seed_ ^ Hash(key) ^ 0x5bd1e995ULL))
               .first;
    }
    it->second.Add(item);
  }

  const std::unordered_map<Key, ReservoirSampler<T>>& strata() const {
    return strata_;
  }

  /// Union of all per-stratum samples.
  std::vector<T> Flatten() const {
    std::vector<T> out;
    for (const auto& [k, r] : strata_) {
      out.insert(out.end(), r.sample().begin(), r.sample().end());
    }
    return out;
  }

 private:
  static uint64_t Hash(const Key& key) { return std::hash<Key>()(key); }

  size_t capacity_;
  uint64_t seed_;
  std::unordered_map<Key, ReservoirSampler<T>> strata_;
};

}  // namespace lodviz::stats

#endif  // LODVIZ_STATS_SAMPLER_H_
