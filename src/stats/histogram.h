#ifndef LODVIZ_STATS_HISTOGRAM_H_
#define LODVIZ_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "stats/moments.h"

namespace lodviz::stats {

/// One histogram bucket: [lo, hi) except the last, which is [lo, hi].
struct Bin {
  double lo = 0.0;
  double hi = 0.0;
  uint64_t count = 0;
  RunningMoments stats;
};

/// Binning discipline — the two classic data-reduction aggregations the
/// survey cites (binning [42, 138]; equi-depth mirrors HETree-C leaves,
/// equi-width mirrors HETree-R).
enum class BinningKind {
  kEquiWidth,  ///< equal value ranges per bucket
  kEquiDepth,  ///< (approximately) equal counts per bucket
};

/// A one-dimensional histogram over numeric (or epoch-encoded temporal)
/// values. Built either in one shot from a value vector, or incrementally
/// with fixed bounds (streaming setting).
class Histogram {
 public:
  /// Builds from `values` (copied & sorted internally for equi-depth).
  static Result<Histogram> Build(const std::vector<double>& values,
                                 size_t num_bins, BinningKind kind);

  /// Creates an empty equi-width histogram with fixed bounds for streaming
  /// insertion.
  static Result<Histogram> MakeFixed(double lo, double hi, size_t num_bins);

  /// Adds a value (fixed-bounds histograms only; out-of-range values clamp
  /// into the edge buckets).
  void Add(double value);

  const std::vector<Bin>& bins() const { return bins_; }
  BinningKind kind() const { return kind_; }
  uint64_t total_count() const { return total_; }

  /// Index of the bin containing `value` (clamped).
  size_t BinIndex(double value) const;

  /// Estimated count in [lo, hi] assuming intra-bin uniformity.
  double EstimateRangeCount(double lo, double hi) const;

  /// Renders a compact ASCII sparkline-style summary (for examples/CLI).
  std::string ToAscii(size_t max_width = 40) const;

 private:
  Histogram(std::vector<Bin> bins, BinningKind kind)
      : bins_(std::move(bins)), kind_(kind) {}

  std::vector<Bin> bins_;
  BinningKind kind_;
  uint64_t total_ = 0;
};

}  // namespace lodviz::stats

#endif  // LODVIZ_STATS_HISTOGRAM_H_
