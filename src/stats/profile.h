#ifndef LODVIZ_STATS_PROFILE_H_
#define LODVIZ_STATS_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"
#include "stats/histogram.h"
#include "stats/moments.h"

namespace lodviz::stats {

/// The value kind of an RDF property, inferred from its objects. This is
/// the "Data Types" dimension of the survey's Table 1 (N / T / S / H / G)
/// at the property granularity.
enum class ValueKind {
  kNumeric,      ///< xsd numeric literals (Table 1 "N")
  kTemporal,     ///< xsd:dateTime / xsd:date (Table 1 "T")
  kCategorical,  ///< low-cardinality strings or IRIs
  kText,         ///< high-cardinality free text
  kEntity,       ///< IRIs linking to other resources (graph edges, "G")
};

std::string_view ValueKindToString(ValueKind kind);

/// Statistical profile of one predicate.
struct PropertyProfile {
  rdf::TermId predicate = rdf::kInvalidTermId;
  std::string predicate_iri;
  ValueKind kind = ValueKind::kText;
  uint64_t count = 0;              ///< triples with this predicate
  double distinct_estimate = 0.0;  ///< HLL estimate of distinct objects
  RunningMoments moments;          ///< numeric/temporal values only
  /// Top object values by frequency (categorical kinds), value -> count.
  std::vector<std::pair<std::string, uint64_t>> top_values;
  /// True if this predicate is a WGS84 latitude/longitude coordinate.
  bool is_geo_coordinate = false;
};

/// Whole-dataset profile: per-property statistics plus dataset-level
/// signals (spatial pairs, class hierarchy presence) used by the
/// visualization recommender.
struct DatasetProfile {
  uint64_t triple_count = 0;
  uint64_t subject_count = 0;
  std::vector<PropertyProfile> properties;
  bool has_spatial = false;       ///< both geo:lat and geo:long observed
  bool has_class_hierarchy = false;  ///< rdfs:subClassOf edges present
  uint64_t entity_link_count = 0;    ///< triples whose object is an IRI

  /// Profile of a predicate by IRI; nullptr if absent.
  const PropertyProfile* FindProperty(std::string_view iri) const;
};

struct ProfilerOptions {
  /// Max object values examined per predicate (reservoir-sampled above).
  size_t sample_per_predicate = 10000;
  /// Distinct-ratio below which string values are categorical not text.
  double categorical_distinct_ratio = 0.5;
  /// Absolute distinct count below which values are categorical.
  uint64_t categorical_max_distinct = 64;
  /// Number of top values kept for categorical properties.
  size_t top_k = 10;
  uint64_t seed = 42;
};

/// Scans `store` and produces a DatasetProfile. Cost is one pass per
/// predicate over (up to) sample_per_predicate objects.
Result<DatasetProfile> ProfileDataset(const rdf::TripleStore& store,
                                      const ProfilerOptions& options = {});

/// Profiles a single predicate.
Result<PropertyProfile> ProfileProperty(const rdf::TripleStore& store,
                                        rdf::TermId predicate,
                                        const ProfilerOptions& options = {});

}  // namespace lodviz::stats

#endif  // LODVIZ_STATS_PROFILE_H_
