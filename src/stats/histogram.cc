#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace lodviz::stats {

Result<Histogram> Histogram::Build(const std::vector<double>& values,
                                   size_t num_bins, BinningKind kind) {
  if (num_bins == 0) return Status::InvalidArgument("num_bins must be > 0");
  if (values.empty()) return Status::InvalidArgument("no values to bin");

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double lo = sorted.front();
  double hi = sorted.back();

  std::vector<Bin> bins;
  if (kind == BinningKind::kEquiWidth) {
    if (hi == lo) hi = lo + 1.0;  // degenerate: single-valued data
    double width = (hi - lo) / static_cast<double>(num_bins);
    bins.resize(num_bins);
    for (size_t i = 0; i < num_bins; ++i) {
      bins[i].lo = lo + width * static_cast<double>(i);
      bins[i].hi = (i + 1 == num_bins) ? hi : lo + width * static_cast<double>(i + 1);
    }
  } else {
    // Equi-depth: bucket boundaries at value quantiles.
    size_t n = sorted.size();
    size_t k = std::min(num_bins, n);
    bins.resize(k);
    for (size_t i = 0; i < k; ++i) {
      size_t b = i * n / k;
      size_t e = (i + 1) * n / k;  // exclusive
      bins[i].lo = sorted[b];
      bins[i].hi = (i + 1 == k) ? sorted[n - 1] : sorted[e];
    }
  }

  Histogram h(std::move(bins), kind);
  for (double v : values) h.Add(v);
  return h;
}

Result<Histogram> Histogram::MakeFixed(double lo, double hi, size_t num_bins) {
  if (num_bins == 0) return Status::InvalidArgument("num_bins must be > 0");
  if (!(hi > lo)) return Status::InvalidArgument("need hi > lo");
  std::vector<Bin> bins(num_bins);
  double width = (hi - lo) / static_cast<double>(num_bins);
  for (size_t i = 0; i < num_bins; ++i) {
    bins[i].lo = lo + width * static_cast<double>(i);
    bins[i].hi = (i + 1 == num_bins) ? hi : lo + width * static_cast<double>(i + 1);
  }
  return Histogram(std::move(bins), BinningKind::kEquiWidth);
}

size_t Histogram::BinIndex(double value) const {
  // Binary search on bin lower bounds.
  size_t lo = 0, hi = bins_.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (value >= bins_[mid].lo) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void Histogram::Add(double value) {
  Bin& bin = bins_[BinIndex(value)];
  ++bin.count;
  bin.stats.Add(value);
  ++total_;
}

double Histogram::EstimateRangeCount(double lo, double hi) const {
  if (hi < lo) return 0.0;
  double est = 0.0;
  for (const Bin& b : bins_) {
    double blo = b.lo, bhi = b.hi;
    if (bhi <= lo || blo >= hi) {
      if (!(blo == bhi && blo >= lo && blo <= hi)) continue;
    }
    double overlap_lo = std::max(lo, blo);
    double overlap_hi = std::min(hi, bhi);
    double width = bhi - blo;
    double frac = width > 0 ? (overlap_hi - overlap_lo) / width : 1.0;
    frac = std::clamp(frac, 0.0, 1.0);
    est += frac * static_cast<double>(b.count);
  }
  return est;
}

std::string Histogram::ToAscii(size_t max_width) const {
  uint64_t max_count = 1;
  for (const Bin& b : bins_) max_count = std::max(max_count, b.count);
  std::string out;
  for (const Bin& b : bins_) {
    size_t w = static_cast<size_t>(
        std::llround(static_cast<double>(b.count) /
                     static_cast<double>(max_count) *
                     static_cast<double>(max_width)));
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%10.2f, %10.2f) ", b.lo, b.hi);
    out += buf;
    out.append(w, '#');
    out += ' ';
    out += std::to_string(b.count);
    out += '\n';
  }
  return out;
}

}  // namespace lodviz::stats
