#include "graph/layout.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "exec/parallel.h"

namespace lodviz::graph {

namespace {

void NormalizeToUnitSquare(Layout* layout) {
  if (layout->empty()) return;
  geo::Rect bounds = geo::Rect::Empty();
  for (const geo::Point& p : *layout) bounds.Expand(p);
  double w = std::max(bounds.Width(), 1e-9);
  double h = std::max(bounds.Height(), 1e-9);
  for (geo::Point& p : *layout) {
    p.x = (p.x - bounds.min_x) / w;
    p.y = (p.y - bounds.min_y) / h;
  }
}

}  // namespace

Layout ForceDirectedLayout(const Graph& g, const ForceLayoutOptions& options) {
  NodeId n = g.num_nodes();
  Layout pos(n);
  Rng rng(options.seed);
  for (geo::Point& p : pos) {
    p.x = rng.UniformDouble();
    p.y = rng.UniformDouble();
  }
  if (n <= 1) return pos;

  const double area = 1.0;
  const double k = std::sqrt(area / static_cast<double>(n));  // ideal length
  std::vector<geo::Point> disp(n);
  double temperature = 0.1;
  const double cooling = std::pow(0.01 / temperature,
                                  1.0 / std::max(1, options.iterations));

  const bool exact = n <= options.exact_repulsion_limit;
  // Grid for approximate repulsion: cell size ~ 2k, only near cells repel.
  const double cell = std::max(2.0 * k, 1e-6);
  const int grid_n = std::max(1, static_cast<int>(1.0 / cell));

  for (int iter = 0; iter < options.iterations; ++iter) {
    for (geo::Point& d : disp) d = {0.0, 0.0};

    auto repel = [&](NodeId i, NodeId j) {
      double dx = pos[i].x - pos[j].x;
      double dy = pos[i].y - pos[j].y;
      double dist2 = dx * dx + dy * dy + 1e-12;
      double dist = std::sqrt(dist2);
      double force = k * k / dist;
      disp[i].x += dx / dist * force;
      disp[i].y += dy / dist * force;
      disp[j].x -= dx / dist * force;
      disp[j].y -= dy / dist * force;
    };

    // One-sided repulsion: accumulates only into disp[i], so each node can
    // be computed independently. a-b == -(b-a) exactly in IEEE arithmetic,
    // so the per-node sum matches the pairwise update term for term.
    auto repel_into = [&](NodeId i, NodeId j) {
      double dx = pos[i].x - pos[j].x;
      double dy = pos[i].y - pos[j].y;
      double dist2 = dx * dx + dy * dy + 1e-12;
      double dist = std::sqrt(dist2);
      double force = k * k / dist;
      disp[i].x += dx / dist * force;
      disp[i].y += dy / dist * force;
    };

    if (exact) {
      if (exec::SerialMode()) {
        for (NodeId i = 0; i < n; ++i) {
          for (NodeId j = i + 1; j < n; ++j) repel(i, j);
        }
      } else {
        exec::ParallelFor(0, n, 128, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            for (NodeId j = 0; j < n; ++j) {
              if (j != i) repel_into(static_cast<NodeId>(i), j);
            }
          }
        });
      }
    } else {
      std::unordered_map<uint64_t, std::vector<NodeId>> grid;
      auto cell_of = [&](const geo::Point& p) {
        int cx = std::clamp(static_cast<int>(p.x / cell), 0, grid_n - 1);
        int cy = std::clamp(static_cast<int>(p.y / cell), 0, grid_n - 1);
        return std::make_pair(cx, cy);
      };
      auto key = [](int cx, int cy) {
        return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
               static_cast<uint32_t>(cy);
      };
      for (NodeId i = 0; i < n; ++i) {
        auto [cx, cy] = cell_of(pos[i]);
        grid[key(cx, cy)].push_back(i);
      }
      if (exec::SerialMode()) {
        for (NodeId i = 0; i < n; ++i) {
          auto [cx, cy] = cell_of(pos[i]);
          for (int dx = -1; dx <= 1; ++dx) {
            for (int dy = -1; dy <= 1; ++dy) {
              int nx = cx + dx, ny = cy + dy;
              if (nx < 0 || ny < 0 || nx >= grid_n || ny >= grid_n) continue;
              auto it = grid.find(key(nx, ny));
              if (it == grid.end()) continue;
              for (NodeId j : it->second) {
                if (j > i) repel(i, j);
              }
            }
          }
        }
      } else {
        exec::ParallelFor(0, n, 256, [&](size_t b, size_t e) {
          for (size_t i = b; i < e; ++i) {
            auto [cx, cy] = cell_of(pos[i]);
            for (int dx = -1; dx <= 1; ++dx) {
              for (int dy = -1; dy <= 1; ++dy) {
                int nx = cx + dx, ny = cy + dy;
                if (nx < 0 || ny < 0 || nx >= grid_n || ny >= grid_n) continue;
                auto it = grid.find(key(nx, ny));
                if (it == grid.end()) continue;
                for (NodeId j : it->second) {
                  if (j != i) repel_into(static_cast<NodeId>(i), j);
                }
              }
            }
          }
        });
      }
    }

    // Attraction along edges.
    for (const auto& [u, v] : g.edges()) {
      double dx = pos[u].x - pos[v].x;
      double dy = pos[u].y - pos[v].y;
      double dist = std::sqrt(dx * dx + dy * dy) + 1e-12;
      double force = dist * dist / k;
      disp[u].x -= dx / dist * force;
      disp[u].y -= dy / dist * force;
      disp[v].x += dx / dist * force;
      disp[v].y += dy / dist * force;
    }

    // Apply displacements, capped by temperature.
    for (NodeId i = 0; i < n; ++i) {
      double len = std::sqrt(disp[i].x * disp[i].x + disp[i].y * disp[i].y);
      if (len < 1e-12) continue;
      double capped = std::min(len, temperature);
      pos[i].x += disp[i].x / len * capped;
      pos[i].y += disp[i].y / len * capped;
      pos[i].x = std::clamp(pos[i].x, 0.0, 1.0);
      pos[i].y = std::clamp(pos[i].y, 0.0, 1.0);
    }
    temperature *= cooling;
  }
  NormalizeToUnitSquare(&pos);
  return pos;
}

Layout CircularLayout(const Graph& g) {
  NodeId n = g.num_nodes();
  Layout pos(n);
  for (NodeId i = 0; i < n; ++i) {
    double angle = 2.0 * M_PI * static_cast<double>(i) /
                   std::max<double>(1.0, static_cast<double>(n));
    pos[i] = {0.5 + 0.5 * std::cos(angle), 0.5 + 0.5 * std::sin(angle)};
  }
  return pos;
}

Layout GridLayout(const Graph& g) {
  NodeId n = g.num_nodes();
  Layout pos(n);
  NodeId side = static_cast<NodeId>(std::ceil(std::sqrt(static_cast<double>(
      std::max<NodeId>(1, n)))));
  for (NodeId i = 0; i < n; ++i) {
    pos[i] = {static_cast<double>(i % side) / side,
              static_cast<double>(i / side) / side};
  }
  return pos;
}

double MeanEdgeLengthSq(const Graph& g, const Layout& layout) {
  if (g.edges().empty()) return 0.0;
  double total = 0.0;
  for (const auto& [u, v] : g.edges()) {
    total += geo::DistanceSq(layout[u], layout[v]);
  }
  return total / static_cast<double>(g.edges().size());
}

size_t ForceLayoutMemoryBytes(NodeId n) {
  // positions + displacement vectors + adjacency working set.
  return static_cast<size_t>(n) * (2 * sizeof(geo::Point));
}

}  // namespace lodviz::graph
