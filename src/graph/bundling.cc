#include "graph/bundling.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "exec/parallel.h"

namespace lodviz::graph {

namespace {

double Length(const geo::Point& a, const geo::Point& b) {
  return geo::Distance(a, b);
}

double PolylineLength(const Polyline& line) {
  double total = 0.0;
  for (size_t i = 1; i < line.size(); ++i) {
    total += Length(line[i - 1], line[i]);
  }
  return total;
}

/// Holten/van Wijk edge compatibility: angle * scale * position * visibility
/// (visibility approximated by position here).
double Compatibility(const geo::Point& p0, const geo::Point& p1,
                     const geo::Point& q0, const geo::Point& q1) {
  geo::Point pv{p1.x - p0.x, p1.y - p0.y};
  geo::Point qv{q1.x - q0.x, q1.y - q0.y};
  double lp = std::hypot(pv.x, pv.y);
  double lq = std::hypot(qv.x, qv.y);
  if (lp < 1e-9 || lq < 1e-9) return 0.0;
  double angle = std::abs(pv.x * qv.x + pv.y * qv.y) / (lp * lq);
  double lavg = (lp + lq) / 2.0;
  double scale = 2.0 / (lavg / std::min(lp, lq) + std::max(lp, lq) / lavg);
  geo::Point pm{(p0.x + p1.x) / 2, (p0.y + p1.y) / 2};
  geo::Point qm{(q0.x + q1.x) / 2, (q0.y + q1.y) / 2};
  double position = lavg / (lavg + Length(pm, qm));
  return angle * scale * position;
}

}  // namespace

uint64_t CountDistinctCells(const std::vector<Polyline>& polylines,
                            int resolution) {
  std::unordered_set<uint64_t> cells;
  auto mark_segment = [&](const geo::Point& a, const geo::Point& b) {
    double len = Length(a, b);
    int steps = std::max(1, static_cast<int>(len * resolution * 2));
    for (int s = 0; s <= steps; ++s) {
      double t = static_cast<double>(s) / steps;
      double x = a.x + (b.x - a.x) * t;
      double y = a.y + (b.y - a.y) * t;
      int cx = std::clamp(static_cast<int>(x * resolution), 0, resolution - 1);
      int cy = std::clamp(static_cast<int>(y * resolution), 0, resolution - 1);
      cells.insert((static_cast<uint64_t>(cx) << 32) |
                   static_cast<uint32_t>(cy));
    }
  };
  for (const Polyline& line : polylines) {
    for (size_t i = 1; i < line.size(); ++i) mark_segment(line[i - 1], line[i]);
  }
  return cells.size();
}

BundlingResult BundleEdges(const Graph& g, const Layout& layout,
                           const BundlingOptions& options) {
  BundlingResult result;
  const auto& edges = g.edges();
  size_t m = edges.size();
  int p = options.subdivisions;

  // Initialize polylines as straight subdivided lines.
  result.polylines.resize(m);
  for (size_t e = 0; e < m; ++e) {
    const geo::Point& a = layout[edges[e].first];
    const geo::Point& b = layout[edges[e].second];
    Polyline& line = result.polylines[e];
    line.resize(p + 2);
    for (int i = 0; i <= p + 1; ++i) {
      double t = static_cast<double>(i) / (p + 1);
      line[i] = {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
    }
    result.ink_before += Length(a, b);
  }
  result.distinct_cells_before = CountDistinctCells(result.polylines, 256);

  // Precompute compatible pairs with their compatibility weights. The
  // upper triangle (f > e) is embarrassingly parallel per e; the serial
  // symmetric fill below replays the original ascending-(e, f) insertion
  // order, so `compatible` is identical to the old single loop.
  std::vector<std::vector<std::pair<uint32_t, double>>> upper(m);
  exec::ParallelFor(0, m, 8, [&](size_t eb, size_t ee) {
    for (size_t e = eb; e < ee; ++e) {
      const geo::Point& p0 = layout[edges[e].first];
      const geo::Point& p1 = layout[edges[e].second];
      for (size_t f = e + 1; f < m; ++f) {
        const geo::Point& q0 = layout[edges[f].first];
        const geo::Point& q1 = layout[edges[f].second];
        double c = Compatibility(p0, p1, q0, q1);
        if (c >= options.compatibility_threshold) {
          upper[e].emplace_back(static_cast<uint32_t>(f), c);
        }
      }
    }
  });
  std::vector<std::vector<std::pair<uint32_t, double>>> compatible(m);
  for (size_t e = 0; e < m; ++e) {
    for (const auto& [f, c] : upper[e]) {
      compatible[e].emplace_back(f, c);
      compatible[f].emplace_back(static_cast<uint32_t>(e), c);
      ++result.compatible_pairs;
    }
  }

  // Iterative refinement: spring to stay smooth + compatibility-weighted
  // average attraction toward same-index points of compatible edges. The
  // step decays so bundles converge instead of oscillating.
  std::vector<Polyline> next = result.polylines;
  double step = options.step;
  for (int iter = 0; iter < options.iterations; ++iter) {
    // Jacobi-style update: every edge reads only the previous iteration's
    // polylines and writes only next[e], so parallel execution is
    // bit-identical to serial.
    exec::ParallelFor(0, m, 16, [&](size_t eb, size_t ee) {
      for (size_t e = eb; e < ee; ++e) {
        Polyline& line = result.polylines[e];
        for (int i = 1; i <= p; ++i) {
          double fx = options.stiffness *
                      (line[i - 1].x + line[i + 1].x - 2 * line[i].x);
          double fy = options.stiffness *
                      (line[i - 1].y + line[i + 1].y - 2 * line[i].y);
          if (!compatible[e].empty()) {
            double ax = 0.0, ay = 0.0, wsum = 0.0;
            for (const auto& [f, w] : compatible[e]) {
              const geo::Point& other = result.polylines[f][i];
              ax += w * (other.x - line[i].x);
              ay += w * (other.y - line[i].y);
              wsum += w;
            }
            fx += ax / wsum;
            fy += ay / wsum;
          }
          next[e][i] = {line[i].x + step * fx, line[i].y + step * fy};
        }
        next[e][0] = line[0];
        next[e][p + 1] = line[p + 1];
      }
    });
    std::swap(result.polylines, next);
    if ((iter + 1) % 15 == 0) step *= 0.5;
  }

  for (const Polyline& line : result.polylines) {
    result.ink_after += PolylineLength(line);
  }
  result.distinct_cells_after = CountDistinctCells(result.polylines, 256);
  return result;
}

}  // namespace lodviz::graph
