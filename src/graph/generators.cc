#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace lodviz::graph {

Graph BarabasiAlbert(NodeId n, int m, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edges;
  // Endpoint pool: each appearance is proportional to degree.
  std::vector<NodeId> pool;
  NodeId start = static_cast<NodeId>(std::max(m + 1, 2));
  // Initial clique-ish seed: a path over the first `start` nodes.
  for (NodeId i = 1; i < start && i < n; ++i) {
    edges.emplace_back(i - 1, i);
    pool.push_back(i - 1);
    pool.push_back(i);
  }
  for (NodeId u = start; u < n; ++u) {
    for (int e = 0; e < m; ++e) {
      NodeId target = pool.empty()
                          ? static_cast<NodeId>(rng.Uniform(u))
                          : pool[rng.Uniform(pool.size())];
      if (target == u) continue;
      edges.emplace_back(u, target);
      pool.push_back(u);
      pool.push_back(target);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph ErdosRenyi(NodeId n, double p, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edges;
  // Geometric skipping for sparse p.
  if (p <= 0.0 || n < 2) return Graph::FromEdges(n, {});
  uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  auto pair_of = [n](uint64_t idx) {
    // Map a linear index to (u, v), u < v (row-major upper triangle).
    NodeId u = 0;
    uint64_t row_len = n - 1;
    while (idx >= row_len) {
      idx -= row_len;
      ++u;
      --row_len;
    }
    return std::make_pair(u, static_cast<NodeId>(u + 1 + idx));
  };
  double log1mp = std::log(1.0 - std::min(p, 0.999999));
  uint64_t idx = 0;
  while (true) {
    double r = std::max(1e-12, rng.UniformDouble());
    uint64_t skip = static_cast<uint64_t>(std::log(r) / log1mp) + 1;
    if (idx + skip > total_pairs) break;
    idx += skip;
    edges.push_back(pair_of(idx - 1));
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph WattsStrogatz(NodeId n, int k, double beta, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (int j = 1; j <= k / 2; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (rng.Bernoulli(beta)) {
        v = static_cast<NodeId>(rng.Uniform(n));
        if (v == u) v = static_cast<NodeId>((u + 1) % n);
      }
      edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

Graph PlantedPartition(NodeId clusters, NodeId nodes_per_cluster, double p_in,
                       double p_out, uint64_t seed) {
  Rng rng(seed);
  NodeId n = clusters * nodes_per_cluster;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      bool same = (u / nodes_per_cluster) == (v / nodes_per_cluster);
      if (rng.Bernoulli(same ? p_in : p_out)) edges.emplace_back(u, v);
    }
  }
  return Graph::FromEdges(n, std::move(edges));
}

}  // namespace lodviz::graph
