#ifndef LODVIZ_GRAPH_BUNDLING_H_
#define LODVIZ_GRAPH_BUNDLING_H_

#include <vector>

#include "geo/geometry.h"
#include "graph/graph.h"
#include "graph/layout.h"

namespace lodviz::graph {

/// An edge rendered as a polyline of control points (endpoints included).
using Polyline = std::vector<geo::Point>;

struct BundlingOptions {
  /// Subdivision points per edge (excluding endpoints).
  int subdivisions = 8;
  /// Force-directed refinement iterations.
  int iterations = 30;
  /// Edge-pair compatibility threshold in [0, 1]; pairs below it do not
  /// attract (Holten & van Wijk's combined measure).
  double compatibility_threshold = 0.6;
  /// Spring constant for keeping subdivision points near the straight line.
  double stiffness = 0.4;
  /// Initial displacement step; halves every 15 iterations.
  double step = 0.25;
};

struct BundlingResult {
  std::vector<Polyline> polylines;
  /// Total polyline length before bundling (straight lines).
  double ink_before = 0.0;
  /// Total length after bundling (longer curves, but overlapping bundles
  /// reduce *distinct* ink; see distinct_ink_*).
  double ink_after = 0.0;
  /// Screen-space ink: number of distinct raster cells touched by all
  /// edges, before and after — the clutter metric E12 reports.
  uint64_t distinct_cells_before = 0;
  uint64_t distinct_cells_after = 0;
  size_t compatible_pairs = 0;
};

/// Force-directed edge bundling (FDEB [63, 48], simplified): subdivision
/// points of compatible edges attract each other, merging parallel edges
/// into bundles and reducing visual clutter.
BundlingResult BundleEdges(const Graph& g, const Layout& layout,
                           const BundlingOptions& options);

/// Counts distinct raster cells (resolution x resolution grid over the
/// unit square) touched when drawing the polylines — a headless proxy for
/// rendered ink.
uint64_t CountDistinctCells(const std::vector<Polyline>& polylines,
                            int resolution);

}  // namespace lodviz::graph

#endif  // LODVIZ_GRAPH_BUNDLING_H_
