#include "graph/sampling.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace lodviz::graph {

std::vector<NodeId> RandomNodeSample(const Graph& g, size_t target_nodes,
                                     uint64_t seed) {
  NodeId n = g.num_nodes();
  std::vector<NodeId> all(n);
  std::iota(all.begin(), all.end(), 0);
  Rng rng(seed);
  size_t k = std::min<size_t>(target_nodes, n);
  // Partial Fisher–Yates.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + rng.Uniform(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<NodeId> RandomEdgeSample(const Graph& g, size_t target_nodes,
                                     uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<NodeId> chosen;
  const auto& edges = g.edges();
  if (edges.empty()) return RandomNodeSample(g, target_nodes, seed);
  size_t guard = 0;
  while (chosen.size() < target_nodes && guard < 50 * target_nodes) {
    const auto& [u, v] = edges[rng.Uniform(edges.size())];
    chosen.insert(u);
    if (chosen.size() < target_nodes) chosen.insert(v);
    ++guard;
  }
  std::vector<NodeId> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> RandomWalkSample(const Graph& g, size_t target_nodes,
                                     uint64_t seed,
                                     double restart_probability) {
  Rng rng(seed);
  NodeId n = g.num_nodes();
  if (n == 0) return {};
  std::unordered_set<NodeId> visited;
  NodeId start = static_cast<NodeId>(rng.Uniform(n));
  NodeId current = start;
  visited.insert(current);
  size_t budget = 100 * target_nodes + 1000;
  while (visited.size() < std::min<size_t>(target_nodes, n) && budget-- > 0) {
    if (rng.Bernoulli(restart_probability) || g.Degree(current) == 0) {
      // Restart; occasionally jump to an entirely random node so
      // disconnected components are eventually reached.
      current = rng.Bernoulli(0.1) ? static_cast<NodeId>(rng.Uniform(n)) : start;
      visited.insert(current);
      continue;
    }
    auto neighbors = g.Neighbors(current);
    current = neighbors[rng.Uniform(neighbors.size())];
    visited.insert(current);
  }
  std::vector<NodeId> out(visited.begin(), visited.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> ForestFireSample(const Graph& g, size_t target_nodes,
                                     uint64_t seed, double burn_probability) {
  Rng rng(seed);
  NodeId n = g.num_nodes();
  if (n == 0) return {};
  std::unordered_set<NodeId> burned;
  std::vector<NodeId> frontier;
  size_t guard = 100 * target_nodes + 1000;
  while (burned.size() < std::min<size_t>(target_nodes, n) && guard-- > 0) {
    if (frontier.empty()) {
      NodeId ignition = static_cast<NodeId>(rng.Uniform(n));
      if (burned.insert(ignition).second) frontier.push_back(ignition);
      continue;
    }
    NodeId u = frontier.back();
    frontier.pop_back();
    for (NodeId v : g.Neighbors(u)) {
      if (burned.size() >= target_nodes) break;
      if (!burned.count(v) && rng.Bernoulli(burn_probability)) {
        burned.insert(v);
        frontier.push_back(v);
      }
    }
  }
  std::vector<NodeId> out(burned.begin(), burned.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace lodviz::graph
