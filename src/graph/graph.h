#ifndef LODVIZ_GRAPH_GRAPH_H_
#define LODVIZ_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "rdf/triple_store.h"

namespace lodviz::graph {

using NodeId = uint32_t;

/// An undirected graph in CSR form, optionally tied back to RDF terms.
/// This is the node-link substrate of Section 3.4: RDF entity-to-entity
/// triples become edges; literals are dropped.
class Graph {
 public:
  /// An empty graph (0 nodes).
  Graph() = default;

  /// Builds from the entity-link triples of `store` (object is an IRI or
  /// blank node, subject != object). Parallel edges are deduplicated.
  static Graph FromTripleStore(const rdf::TripleStore& store);

  /// Builds from an explicit edge list over nodes [0, num_nodes).
  /// Self-loops are dropped and parallel edges deduplicated.
  static Graph FromEdges(NodeId num_nodes,
                         std::vector<std::pair<NodeId, NodeId>> edges);

  NodeId num_nodes() const { return static_cast<NodeId>(offsets_.size() - 1); }
  size_t num_edges() const { return edges_.size(); }

  /// Neighbors of `u` (sorted, unique).
  std::span<const NodeId> Neighbors(NodeId u) const {
    return {adj_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  size_t Degree(NodeId u) const { return offsets_[u + 1] - offsets_[u]; }
  double AverageDegree() const {
    return num_nodes() ? 2.0 * static_cast<double>(num_edges()) /
                             static_cast<double>(num_nodes())
                       : 0.0;
  }
  size_t MaxDegree() const;

  /// Unique undirected edges (u < v).
  const std::vector<std::pair<NodeId, NodeId>>& edges() const { return edges_; }

  /// RDF term id of node `u`; kInvalidTermId for synthetic graphs.
  rdf::TermId node_term(NodeId u) const {
    return u < terms_.size() ? terms_[u] : rdf::kInvalidTermId;
  }

  /// Node id for an RDF term; returns false if the term is not a node.
  bool NodeForTerm(rdf::TermId term, NodeId* out) const;

  /// BFS distances from `source` (unreachable = UINT32_MAX).
  std::vector<uint32_t> BfsDistances(NodeId source) const;

  /// Connected component id per node (0-based, dense).
  std::vector<NodeId> ConnectedComponents(NodeId* num_components = nullptr) const;

  /// k-core decomposition: per-node core number.
  std::vector<uint32_t> CoreNumbers() const;

  /// Induced subgraph on `nodes`; `old_to_new` (optional) receives the
  /// node-id mapping.
  Graph InducedSubgraph(const std::vector<NodeId>& nodes,
                        std::unordered_map<NodeId, NodeId>* old_to_new =
                            nullptr) const;

  size_t MemoryUsage() const;

 private:
  void BuildCsr(NodeId num_nodes,
                std::vector<std::pair<NodeId, NodeId>> edges);

  std::vector<size_t> offsets_ = {0};  // size num_nodes + 1
  std::vector<NodeId> adj_;
  std::vector<std::pair<NodeId, NodeId>> edges_;  // u < v, unique
  std::vector<rdf::TermId> terms_;
  std::unordered_map<rdf::TermId, NodeId> term_to_node_;
};

}  // namespace lodviz::graph

#endif  // LODVIZ_GRAPH_GRAPH_H_
