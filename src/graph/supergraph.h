#ifndef LODVIZ_GRAPH_SUPERGRAPH_H_
#define LODVIZ_GRAPH_SUPERGRAPH_H_

#include <vector>

#include "graph/clustering.h"
#include "graph/graph.h"

namespace lodviz::graph {

/// One abstraction level: a coarsened graph whose nodes are clusters of
/// the level below.
struct AbstractionLevel {
  Graph graph;
  /// For each node of this level: how many base-graph nodes it represents.
  std::vector<uint64_t> base_node_counts;
  /// For each node of this level: its member node ids in the level below.
  std::vector<std::vector<NodeId>> members;
};

/// Hierarchical graph abstraction (ASK-GraphView / GrouseFlocks style
/// [1, 8, 9]): the base graph is recursively clustered into super-graphs
/// until the top level fits a display budget. Exploration then starts at
/// the top and expands super-nodes on demand — the technique Section 4
/// prescribes for graphs too large for direct layout.
class GraphHierarchy {
 public:
  struct Options {
    /// Stop coarsening once a level has at most this many nodes.
    NodeId target_top_nodes = 64;
    /// Safety bound on levels.
    int max_levels = 12;
    uint64_t seed = 7;
  };

  /// Builds the hierarchy bottom-up using Louvain clustering per level.
  static GraphHierarchy Build(const Graph& base, const Options& options);

  /// Level 0 is the base graph; higher indexes are coarser.
  size_t num_levels() const { return levels_.size(); }
  const AbstractionLevel& level(size_t i) const { return levels_[i]; }
  const AbstractionLevel& top() const { return levels_.back(); }

  /// Base-graph node ids represented by node `u` of level `level_idx`.
  std::vector<NodeId> BaseMembers(size_t level_idx, NodeId u) const;

  /// "Expand" a super-node: the induced subgraph (one level down) of its
  /// members — what a UI renders when the user opens a cluster.
  Graph ExpandNode(size_t level_idx, NodeId u) const;

  /// Total memory of all levels.
  size_t MemoryUsage() const;

 private:
  std::vector<AbstractionLevel> levels_;
};

}  // namespace lodviz::graph

#endif  // LODVIZ_GRAPH_SUPERGRAPH_H_
