#include "graph/clustering.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "exec/parallel.h"

namespace lodviz::graph {

std::vector<size_t> Clustering::ClusterSizes() const {
  std::vector<size_t> sizes(num_clusters, 0);
  for (NodeId c : assignment) ++sizes[c];
  return sizes;
}

Clustering Densify(std::vector<NodeId> assignment) {
  std::unordered_map<NodeId, NodeId> remap;
  for (NodeId& a : assignment) {
    auto [it, inserted] = remap.emplace(a, static_cast<NodeId>(remap.size()));
    a = it->second;
  }
  Clustering out;
  out.assignment = std::move(assignment);
  out.num_clusters = static_cast<NodeId>(remap.size());
  return out;
}

double Modularity(const Graph& g, const Clustering& clustering) {
  double m = static_cast<double>(g.num_edges());
  if (m == 0) return 0.0;
  // Per-chunk histograms merged in chunk order. Every addend is an
  // integer-valued double, so the sums are exact and the result is
  // bit-identical no matter how the work is split.
  auto combine = [](std::vector<double>& acc, std::vector<double>&& rhs) {
    if (acc.empty()) {
      acc = std::move(rhs);
      return;
    }
    for (size_t c = 0; c < rhs.size(); ++c) acc[c] += rhs[c];
  };
  std::vector<double> degree_sum = exec::ParallelReduce<std::vector<double>>(
      0, g.num_nodes(), 16384,
      [&](size_t b, size_t e) {
        std::vector<double> part(clustering.num_clusters, 0.0);
        for (size_t u = b; u < e; ++u) {
          part[clustering.assignment[u]] +=
              static_cast<double>(g.Degree(static_cast<NodeId>(u)));
        }
        return part;
      },
      combine);
  std::vector<double> intra = exec::ParallelReduce<std::vector<double>>(
      0, g.edges().size(), 16384,
      [&](size_t b, size_t e) {
        std::vector<double> part(clustering.num_clusters, 0.0);
        for (size_t i = b; i < e; ++i) {
          const auto& [u, v] = g.edges()[i];
          if (clustering.assignment[u] == clustering.assignment[v]) {
            part[clustering.assignment[u]] += 1.0;
          }
        }
        return part;
      },
      combine);
  if (degree_sum.empty()) degree_sum.assign(clustering.num_clusters, 0.0);
  if (intra.empty()) intra.assign(clustering.num_clusters, 0.0);
  double q = 0.0;
  for (NodeId c = 0; c < clustering.num_clusters; ++c) {
    q += intra[c] / m - (degree_sum[c] / (2.0 * m)) * (degree_sum[c] / (2.0 * m));
  }
  return q;
}

Clustering LabelPropagation(const Graph& g, uint64_t seed,
                            int max_iterations) {
  NodeId n = g.num_nodes();
  std::vector<NodeId> label(n);
  std::iota(label.begin(), label.end(), 0);
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);

  for (int iter = 0; iter < max_iterations; ++iter) {
    // Shuffle visiting order (Fisher–Yates).
    for (NodeId i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng.Uniform(i)]);
    }
    bool changed = false;
    std::unordered_map<NodeId, uint32_t> counts;
    for (NodeId u : order) {
      counts.clear();
      for (NodeId v : g.Neighbors(u)) ++counts[label[v]];
      if (counts.empty()) continue;
      NodeId best = label[u];
      uint32_t best_count = 0;
      for (const auto& [lbl, cnt] : counts) {
        if (cnt > best_count || (cnt == best_count && lbl < best)) {
          best = lbl;
          best_count = cnt;
        }
      }
      if (best != label[u]) {
        label[u] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return Densify(std::move(label));
}

namespace {

/// One Louvain local-moving pass over a weighted graph in adjacency-map
/// form. Returns the (densified) assignment and whether anything moved.
struct WeightedGraph {
  // adjacency[u] = {(v, w)}; total_weight = sum of edge weights (each edge
  // counted once); strength[u] = sum of incident weights.
  std::vector<std::vector<std::pair<NodeId, double>>> adjacency;
  std::vector<double> strength;
  double total_weight = 0.0;

  NodeId size() const { return static_cast<NodeId>(adjacency.size()); }
};

WeightedGraph FromGraph(const Graph& g) {
  WeightedGraph wg;
  wg.adjacency.resize(g.num_nodes());
  wg.strength.assign(g.num_nodes(), 0.0);
  for (const auto& [u, v] : g.edges()) {
    wg.adjacency[u].emplace_back(v, 1.0);
    wg.adjacency[v].emplace_back(u, 1.0);
    wg.strength[u] += 1.0;
    wg.strength[v] += 1.0;
    wg.total_weight += 1.0;
  }
  return wg;
}

bool LocalMoving(const WeightedGraph& wg, std::vector<NodeId>* assignment,
                 Rng* rng, int max_sweeps) {
  NodeId n = wg.size();
  std::vector<double> community_strength(n, 0.0);
  for (NodeId u = 0; u < n; ++u) {
    community_strength[(*assignment)[u]] += wg.strength[u];
  }
  double m2 = 2.0 * wg.total_weight;
  if (m2 == 0) return false;

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  bool any_move = false;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    for (NodeId i = n; i > 1; --i) {
      std::swap(order[i - 1], order[rng->Uniform(i)]);
    }
    bool moved = false;
    std::unordered_map<NodeId, double> weight_to;
    for (NodeId u : order) {
      NodeId current = (*assignment)[u];
      weight_to.clear();
      for (const auto& [v, w] : wg.adjacency[u]) {
        if (v != u) weight_to[(*assignment)[v]] += w;
      }
      community_strength[current] -= wg.strength[u];
      NodeId best = current;
      double best_gain = weight_to.count(current)
                             ? weight_to[current] -
                                   community_strength[current] *
                                       wg.strength[u] / m2
                             : -community_strength[current] * wg.strength[u] / m2;
      for (const auto& [c, w] : weight_to) {
        double gain = w - community_strength[c] * wg.strength[u] / m2;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best = c;
        }
      }
      community_strength[best] += wg.strength[u];
      if (best != current) {
        (*assignment)[u] = best;
        moved = true;
        any_move = true;
      }
    }
    if (!moved) break;
  }
  return any_move;
}

WeightedGraph Aggregate(const WeightedGraph& wg,
                        const std::vector<NodeId>& dense_assignment,
                        NodeId num_clusters) {
  WeightedGraph out;
  out.adjacency.resize(num_clusters);
  out.strength.assign(num_clusters, 0.0);
  std::unordered_map<uint64_t, double> edge_weights;
  for (NodeId u = 0; u < wg.size(); ++u) {
    NodeId cu = dense_assignment[u];
    for (const auto& [v, w] : wg.adjacency[u]) {
      if (v < u) continue;  // visit each edge once
      NodeId cv = dense_assignment[v];
      if (cu == cv) continue;  // intra-cluster weight affects only strength
      NodeId a = std::min(cu, cv), b = std::max(cu, cv);
      edge_weights[(static_cast<uint64_t>(a) << 32) | b] += w;
    }
  }
  for (const auto& [key, w] : edge_weights) {
    NodeId a = static_cast<NodeId>(key >> 32);
    NodeId b = static_cast<NodeId>(key & 0xFFFFFFFF);
    out.adjacency[a].emplace_back(b, w);
    out.adjacency[b].emplace_back(a, w);
  }
  // Strengths: preserve total incident weight, including intra-cluster.
  for (NodeId u = 0; u < wg.size(); ++u) {
    out.strength[dense_assignment[u]] += wg.strength[u];
  }
  out.total_weight = wg.total_weight;
  return out;
}

}  // namespace

Clustering LouvainClustering(const Graph& g, uint64_t seed, int max_levels) {
  Rng rng(seed);
  // node -> current top-level community (composed across levels).
  std::vector<NodeId> node_to_community(g.num_nodes());
  std::iota(node_to_community.begin(), node_to_community.end(), 0);

  WeightedGraph wg = FromGraph(g);
  std::vector<NodeId> level_assignment(wg.size());
  std::iota(level_assignment.begin(), level_assignment.end(), 0);

  for (int level = 0; level < max_levels; ++level) {
    bool moved = LocalMoving(wg, &level_assignment, &rng, /*max_sweeps=*/10);
    if (!moved && level > 0) break;
    Clustering dense = Densify(level_assignment);
    // Compose into node-level assignment.
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      node_to_community[u] = dense.assignment[node_to_community[u]];
    }
    if (!moved || dense.num_clusters == wg.size()) break;
    wg = Aggregate(wg, dense.assignment, dense.num_clusters);
    level_assignment.assign(wg.size(), 0);
    std::iota(level_assignment.begin(), level_assignment.end(), 0);
  }
  return Densify(std::move(node_to_community));
}

}  // namespace lodviz::graph
