#ifndef LODVIZ_GRAPH_CLUSTERING_H_
#define LODVIZ_GRAPH_CLUSTERING_H_

#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace lodviz::graph {

/// A node -> cluster assignment (dense cluster ids starting at 0).
struct Clustering {
  std::vector<NodeId> assignment;
  NodeId num_clusters = 0;

  /// Sizes of each cluster.
  std::vector<size_t> ClusterSizes() const;
};

/// Newman modularity of an assignment in [-0.5, 1].
double Modularity(const Graph& g, const Clustering& clustering);

/// Asynchronous label propagation: near-linear community detection.
/// Deterministic given `seed`.
Clustering LabelPropagation(const Graph& g, uint64_t seed,
                            int max_iterations = 20);

/// Louvain-style greedy modularity optimization (local moving +
/// graph aggregation, repeated until modularity stops improving).
Clustering LouvainClustering(const Graph& g, uint64_t seed,
                             int max_levels = 10);

/// Renumbers an assignment to dense cluster ids.
Clustering Densify(std::vector<NodeId> assignment);

}  // namespace lodviz::graph

#endif  // LODVIZ_GRAPH_CLUSTERING_H_
