#ifndef LODVIZ_GRAPH_LAYOUT_H_
#define LODVIZ_GRAPH_LAYOUT_H_

#include <vector>

#include "common/random.h"
#include "geo/geometry.h"
#include "graph/graph.h"

namespace lodviz::graph {

/// Node positions in the unit square, index-aligned with graph nodes.
using Layout = std::vector<geo::Point>;

struct ForceLayoutOptions {
  int iterations = 50;
  uint64_t seed = 1;
  /// Above this node count, repulsion switches from exact O(n^2) to a
  /// grid-bucket approximation (near-field only).
  NodeId exact_repulsion_limit = 2000;
};

/// Fruchterman–Reingold force-directed layout. The classic node-link
/// layout whose memory/time behaviour motivates the survey's Section 4
/// argument that large WoD graphs need abstraction before drawing.
Layout ForceDirectedLayout(const Graph& g, const ForceLayoutOptions& options);

/// Nodes on a circle (O(n), used as a cheap baseline).
Layout CircularLayout(const Graph& g);

/// Row-major grid layout (O(n)).
Layout GridLayout(const Graph& g);

/// Mean squared distance between adjacent nodes — lower is tighter; used
/// to compare layout quality across strategies.
double MeanEdgeLengthSq(const Graph& g, const Layout& layout);

/// Bytes needed to lay out `n` nodes with FR (positions + displacement
/// buffers); the memory wall quantified in bench E6.
size_t ForceLayoutMemoryBytes(NodeId n);

}  // namespace lodviz::graph

#endif  // LODVIZ_GRAPH_LAYOUT_H_
