#include "graph/supergraph.h"

#include <algorithm>

namespace lodviz::graph {

GraphHierarchy GraphHierarchy::Build(const Graph& base,
                                     const Options& options) {
  GraphHierarchy h;
  AbstractionLevel level0;
  level0.graph = base;
  level0.base_node_counts.assign(base.num_nodes(), 1);
  h.levels_.push_back(std::move(level0));

  for (int l = 0; l < options.max_levels; ++l) {
    const AbstractionLevel& current = h.levels_.back();
    if (current.graph.num_nodes() <= options.target_top_nodes) break;

    Clustering clustering =
        LouvainClustering(current.graph, options.seed + l);
    if (clustering.num_clusters >= current.graph.num_nodes()) {
      // No coarsening possible (e.g. edgeless graph) — force a grid merge
      // so the hierarchy still terminates.
      for (NodeId u = 0; u < current.graph.num_nodes(); ++u) {
        clustering.assignment[u] = u / 2;
      }
      clustering = Densify(std::move(clustering.assignment));
    }

    AbstractionLevel next;
    next.members.resize(clustering.num_clusters);
    next.base_node_counts.assign(clustering.num_clusters, 0);
    for (NodeId u = 0; u < current.graph.num_nodes(); ++u) {
      NodeId c = clustering.assignment[u];
      next.members[c].push_back(u);
      next.base_node_counts[c] += current.base_node_counts[u];
    }
    std::vector<std::pair<NodeId, NodeId>> super_edges;
    for (const auto& [u, v] : current.graph.edges()) {
      NodeId cu = clustering.assignment[u];
      NodeId cv = clustering.assignment[v];
      if (cu != cv) super_edges.emplace_back(cu, cv);
    }
    next.graph = Graph::FromEdges(clustering.num_clusters,
                                  std::move(super_edges));
    bool made_progress =
        next.graph.num_nodes() < current.graph.num_nodes();
    h.levels_.push_back(std::move(next));
    if (!made_progress) break;
  }
  return h;
}

std::vector<NodeId> GraphHierarchy::BaseMembers(size_t level_idx,
                                                NodeId u) const {
  std::vector<NodeId> frontier = {u};
  for (size_t l = level_idx; l > 0; --l) {
    std::vector<NodeId> below;
    for (NodeId node : frontier) {
      const auto& members = levels_[l].members[node];
      below.insert(below.end(), members.begin(), members.end());
    }
    frontier = std::move(below);
  }
  std::sort(frontier.begin(), frontier.end());
  return frontier;
}

Graph GraphHierarchy::ExpandNode(size_t level_idx, NodeId u) const {
  if (level_idx == 0) {
    return levels_[0].graph.InducedSubgraph({u});
  }
  return levels_[level_idx - 1].graph.InducedSubgraph(
      levels_[level_idx].members[u]);
}

size_t GraphHierarchy::MemoryUsage() const {
  size_t bytes = 0;
  for (const AbstractionLevel& l : levels_) {
    bytes += l.graph.MemoryUsage() +
             l.base_node_counts.capacity() * sizeof(uint64_t);
    for (const auto& m : l.members) bytes += m.capacity() * sizeof(NodeId);
  }
  return bytes;
}

}  // namespace lodviz::graph
