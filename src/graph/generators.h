#ifndef LODVIZ_GRAPH_GENERATORS_H_
#define LODVIZ_GRAPH_GENERATORS_H_

#include "common/random.h"
#include "graph/graph.h"

namespace lodviz::graph {

/// Synthetic graph generators used by tests and benches (the shapes of
/// real WoD graphs: heavy-tailed, clustered, random).

/// Barabási–Albert preferential attachment: power-law degrees like real
/// linked-data graphs. `m` edges per new node.
Graph BarabasiAlbert(NodeId n, int m, uint64_t seed);

/// Erdős–Rényi G(n, p).
Graph ErdosRenyi(NodeId n, double p, uint64_t seed);

/// Watts–Strogatz small world: ring lattice with degree `k` (even),
/// rewired with probability `beta`.
Graph WattsStrogatz(NodeId n, int k, double beta, uint64_t seed);

/// Planted-partition graph: `clusters` groups of `nodes_per_cluster`,
/// intra-cluster edge prob `p_in`, inter `p_out`. Ground truth for
/// clustering tests (assignment = node / nodes_per_cluster).
Graph PlantedPartition(NodeId clusters, NodeId nodes_per_cluster, double p_in,
                       double p_out, uint64_t seed);

}  // namespace lodviz::graph

#endif  // LODVIZ_GRAPH_GENERATORS_H_
