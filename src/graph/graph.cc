#include "graph/graph.h"

#include <algorithm>
#include <queue>

namespace lodviz::graph {

void Graph::BuildCsr(NodeId num_nodes,
                     std::vector<std::pair<NodeId, NodeId>> edges) {
  // Normalize: drop self loops, order endpoints, dedupe.
  std::vector<std::pair<NodeId, NodeId>> clean;
  clean.reserve(edges.size());
  for (auto [u, v] : edges) {
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    clean.emplace_back(u, v);
  }
  std::sort(clean.begin(), clean.end());
  clean.erase(std::unique(clean.begin(), clean.end()), clean.end());
  edges_ = std::move(clean);

  std::vector<size_t> degree(num_nodes, 0);
  for (const auto& [u, v] : edges_) {
    ++degree[u];
    ++degree[v];
  }
  offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (NodeId i = 0; i < num_nodes; ++i) offsets_[i + 1] = offsets_[i] + degree[i];
  adj_.resize(offsets_.back());
  std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    adj_[cursor[u]++] = v;
    adj_[cursor[v]++] = u;
  }
  for (NodeId i = 0; i < num_nodes; ++i) {
    std::sort(adj_.begin() + offsets_[i], adj_.begin() + offsets_[i + 1]);
  }
}

Graph Graph::FromEdges(NodeId num_nodes,
                       std::vector<std::pair<NodeId, NodeId>> edges) {
  Graph g;
  g.BuildCsr(num_nodes, std::move(edges));
  return g;
}

Graph Graph::FromTripleStore(const rdf::TripleStore& store) {
  Graph g;
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto node_of = [&](rdf::TermId term) {
    auto it = g.term_to_node_.find(term);
    if (it != g.term_to_node_.end()) return it->second;
    NodeId id = static_cast<NodeId>(g.terms_.size());
    g.terms_.push_back(term);
    g.term_to_node_.emplace(term, id);
    return id;
  };
  const rdf::Dictionary& dict = store.dict();
  store.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    const rdf::Term& obj = dict.term(t.o);
    if (!obj.is_iri() && !obj.is_blank()) return true;
    if (t.s == t.o) return true;
    edges.emplace_back(node_of(t.s), node_of(t.o));
    return true;
  });
  g.BuildCsr(static_cast<NodeId>(g.terms_.size()), std::move(edges));
  return g;
}

size_t Graph::MaxDegree() const {
  size_t best = 0;
  for (NodeId u = 0; u < num_nodes(); ++u) best = std::max(best, Degree(u));
  return best;
}

bool Graph::NodeForTerm(rdf::TermId term, NodeId* out) const {
  auto it = term_to_node_.find(term);
  if (it == term_to_node_.end()) return false;
  *out = it->second;
  return true;
}

std::vector<uint32_t> Graph::BfsDistances(NodeId source) const {
  std::vector<uint32_t> dist(num_nodes(), UINT32_MAX);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : Neighbors(u)) {
      if (dist[v] == UINT32_MAX) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> Graph::ConnectedComponents(NodeId* num_components) const {
  std::vector<NodeId> comp(num_nodes(), UINT32_MAX);
  NodeId next = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < num_nodes(); ++s) {
    if (comp[s] != UINT32_MAX) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : Neighbors(u)) {
        if (comp[v] == UINT32_MAX) {
          comp[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

std::vector<uint32_t> Graph::CoreNumbers() const {
  // Matula–Beck peeling with bucket queues.
  NodeId n = num_nodes();
  std::vector<uint32_t> degree(n), core(n, 0);
  size_t max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = static_cast<uint32_t>(Degree(u));
    max_degree = std::max<size_t>(max_degree, degree[u]);
  }
  std::vector<std::vector<NodeId>> buckets(max_degree + 1);
  for (NodeId u = 0; u < n; ++u) buckets[degree[u]].push_back(u);
  std::vector<bool> removed(n, false);
  uint32_t current = 0;
  for (size_t d = 0; d <= max_degree; ++d) {
    auto& bucket = buckets[d];
    while (!bucket.empty()) {
      NodeId u = bucket.back();
      bucket.pop_back();
      if (removed[u] || degree[u] != d) continue;  // stale entry
      removed[u] = true;
      current = std::max(current, static_cast<uint32_t>(d));
      core[u] = current;
      // Neighbors with degree <= d keep their (already final) bucket;
      // those above d drop by one but never below d, so the forward
      // sweep over buckets stays valid.
      for (NodeId v : Neighbors(u)) {
        if (removed[v] || degree[v] <= d) continue;
        --degree[v];
        buckets[degree[v]].push_back(v);
      }
    }
  }
  return core;
}

Graph Graph::InducedSubgraph(
    const std::vector<NodeId>& nodes,
    std::unordered_map<NodeId, NodeId>* old_to_new) const {
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(nodes.size());
  for (NodeId u : nodes) {
    if (!remap.count(u)) {
      remap.emplace(u, static_cast<NodeId>(remap.size()));
    }
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const auto& [u, v] : edges_) {
    auto iu = remap.find(u);
    auto iv = remap.find(v);
    if (iu != remap.end() && iv != remap.end()) {
      edges.emplace_back(iu->second, iv->second);
    }
  }
  Graph sub;
  // Preserve term mapping if present.
  if (!terms_.empty()) {
    sub.terms_.resize(remap.size(), rdf::kInvalidTermId);
    for (const auto& [old_id, new_id] : remap) {
      sub.terms_[new_id] = terms_[old_id];
      if (terms_[old_id] != rdf::kInvalidTermId) {
        sub.term_to_node_.emplace(terms_[old_id], new_id);
      }
    }
  }
  sub.BuildCsr(static_cast<NodeId>(remap.size()), std::move(edges));
  if (old_to_new != nullptr) *old_to_new = std::move(remap);
  return sub;
}

size_t Graph::MemoryUsage() const {
  return offsets_.capacity() * sizeof(size_t) +
         adj_.capacity() * sizeof(NodeId) +
         edges_.capacity() * sizeof(std::pair<NodeId, NodeId>) +
         terms_.capacity() * sizeof(rdf::TermId) +
         term_to_node_.size() * (sizeof(rdf::TermId) + sizeof(NodeId) +
                                 sizeof(void*) * 2);
}

}  // namespace lodviz::graph
