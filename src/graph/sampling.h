#ifndef LODVIZ_GRAPH_SAMPLING_H_
#define LODVIZ_GRAPH_SAMPLING_H_

#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace lodviz::graph {

/// Graph sampling strategies for visual reduction (Section 3.4, e.g. the
/// Oracle sampling approach [127]). All return node subsets; use
/// Graph::InducedSubgraph to materialize the sampled view.

/// Uniform random nodes without replacement.
std::vector<NodeId> RandomNodeSample(const Graph& g, size_t target_nodes,
                                     uint64_t seed);

/// Endpoints of uniformly sampled edges (biases toward high degree,
/// preserving hubs).
std::vector<NodeId> RandomEdgeSample(const Graph& g, size_t target_nodes,
                                     uint64_t seed);

/// Random walk with restart from a random start node; collects visited
/// nodes until the target size (or a step budget) is reached.
std::vector<NodeId> RandomWalkSample(const Graph& g, size_t target_nodes,
                                     uint64_t seed,
                                     double restart_probability = 0.15);

/// Forest fire: recursive probabilistic frontier burning (Leskovec),
/// preserving community structure better than uniform sampling.
std::vector<NodeId> ForestFireSample(const Graph& g, size_t target_nodes,
                                     uint64_t seed,
                                     double burn_probability = 0.7);

}  // namespace lodviz::graph

#endif  // LODVIZ_GRAPH_SAMPLING_H_
