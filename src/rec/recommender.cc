#include "rec/recommender.h"

#include <algorithm>

#include "rdf/vocab.h"

namespace lodviz::rec {

using stats::PropertyProfile;
using stats::ValueKind;
using viz::VisKind;
using viz::VisSpec;

std::vector<viz::DataType> DetectDataTypes(
    const stats::DatasetProfile& profile) {
  bool numeric = false, temporal = false;
  for (const PropertyProfile& p : profile.properties) {
    if (p.is_geo_coordinate) continue;  // counted via has_spatial
    numeric |= p.kind == ValueKind::kNumeric;
    temporal |= p.kind == ValueKind::kTemporal;
  }
  std::vector<viz::DataType> out;
  if (numeric) out.push_back(viz::DataType::kNumeric);
  if (temporal) out.push_back(viz::DataType::kTemporal);
  if (profile.has_spatial) out.push_back(viz::DataType::kSpatial);
  if (profile.has_class_hierarchy) out.push_back(viz::DataType::kHierarchical);
  if (profile.entity_link_count > 0) out.push_back(viz::DataType::kGraph);
  return out;
}

void Recommender::SetPreference(VisKind kind, double multiplier) {
  preferences_[static_cast<uint8_t>(kind)] =
      std::clamp(multiplier, 0.25, 4.0);
}

double Recommender::preference(VisKind kind) const {
  auto it = preferences_.find(static_cast<uint8_t>(kind));
  return it == preferences_.end() ? 1.0 : it->second;
}

void Recommender::RecordFeedback(VisKind kind, bool accepted) {
  double current = preference(kind);
  SetPreference(kind, current * (accepted ? 1.15 : 0.85));
}

std::vector<Recommendation> Recommender::Recommend(
    const stats::DatasetProfile& profile, size_t top_k) const {
  std::vector<Recommendation> candidates;
  auto add = [&](VisKind kind, double score, std::string reason,
                 VisSpec spec) {
    spec.kind = kind;
    Recommendation rec;
    rec.spec = std::move(spec);
    rec.score = score * preference(kind);
    rec.reason = std::move(reason);
    candidates.push_back(std::move(rec));
  };

  // Collect properties per kind (skipping geo coordinates: they feed maps).
  std::vector<const PropertyProfile*> numeric, temporal, categorical;
  for (const PropertyProfile& p : profile.properties) {
    if (p.is_geo_coordinate) continue;
    switch (p.kind) {
      case ValueKind::kNumeric:
        numeric.push_back(&p);
        break;
      case ValueKind::kTemporal:
        temporal.push_back(&p);
        break;
      case ValueKind::kCategorical:
        categorical.push_back(&p);
        break;
      default:
        break;
    }
  }

  // Spatial: a map dominates when coordinates exist.
  if (profile.has_spatial) {
    VisSpec spec;
    spec.x_property = rdf::vocab::kGeoLong;
    spec.y_property = rdf::vocab::kGeoLat;
    spec.title = "Geographic distribution";
    add(VisKind::kMap, 0.95, "dataset has wgs84 lat/long coordinates", spec);
  }

  // Numeric single property: histogram bar chart.
  for (const PropertyProfile* p : numeric) {
    VisSpec spec;
    spec.x_property = p->predicate_iri;
    spec.title = "Distribution of " + p->predicate_iri;
    add(VisKind::kChart, 0.8,
        "numeric property '" + p->predicate_iri + "' suits a histogram",
        spec);
  }

  // Two numeric properties: scatter (correlation discovery, SemLens-style).
  if (numeric.size() >= 2) {
    VisSpec spec;
    spec.x_property = numeric[0]->predicate_iri;
    spec.y_property = numeric[1]->predicate_iri;
    spec.title = spec.x_property + " vs " + spec.y_property;
    add(VisKind::kScatter, 0.85, "two numeric properties suggest a scatter plot",
        spec);
  }
  if (numeric.size() >= 3) {
    VisSpec spec;
    spec.x_property = numeric[0]->predicate_iri;
    spec.y_property = numeric[1]->predicate_iri;
    spec.group_property = numeric[2]->predicate_iri;
    spec.title = "Bubble: 3 numeric dimensions";
    add(VisKind::kBubbleChart, 0.7, "three numeric properties fit a bubble chart",
        spec);
    add(VisKind::kParallelCoords, 0.6,
        "3+ numeric properties can be compared with parallel coordinates",
        spec);
  }

  // Temporal: timeline; temporal + numeric: line chart.
  for (const PropertyProfile* p : temporal) {
    VisSpec spec;
    spec.x_property = p->predicate_iri;
    spec.title = "Timeline of " + p->predicate_iri;
    add(VisKind::kTimeline, 0.75,
        "temporal property '" + p->predicate_iri + "' suits a timeline", spec);
  }
  if (!temporal.empty() && !numeric.empty()) {
    VisSpec spec;
    spec.x_property = temporal[0]->predicate_iri;
    spec.y_property = numeric[0]->predicate_iri;
    spec.title = spec.y_property + " over time";
    add(VisKind::kChart, 0.9, "temporal + numeric properties form a time series",
        spec);
  }

  // Categorical: pie for few values, bars otherwise, treemap for many.
  for (const PropertyProfile* p : categorical) {
    VisSpec spec;
    spec.x_property = p->predicate_iri;
    spec.title = "Breakdown by " + p->predicate_iri;
    if (p->distinct_estimate <= 8) {
      add(VisKind::kPie, 0.7,
          "categorical property with few values suits a pie chart", spec);
    } else {
      add(VisKind::kChart, 0.65,
          "categorical property with many values suits bars", spec);
      add(VisKind::kTreemap, 0.6,
          "high-cardinality categorical property suits a treemap", spec);
    }
  }

  // Hierarchy: treemap / tree. Ranked above generic node-link graphs —
  // containment shows a hierarchy better than links do.
  if (profile.has_class_hierarchy) {
    VisSpec spec;
    spec.x_property = rdf::vocab::kRdfsSubClassOf;
    spec.title = "Class hierarchy";
    add(VisKind::kTreemap, 0.9, "rdfs:subClassOf hierarchy fits a treemap",
        spec);
    add(VisKind::kTree, 0.82, "rdfs:subClassOf hierarchy fits a tree", spec);
  }

  // Entity links: node-link graph.
  if (profile.entity_link_count > 0) {
    VisSpec spec;
    spec.title = "Entity link graph";
    double density =
        static_cast<double>(profile.entity_link_count) /
        std::max<double>(1.0, static_cast<double>(profile.subject_count));
    add(VisKind::kGraph, density > 0.5 ? 0.85 : 0.55,
        "entity-to-entity links form a graph", spec);
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.score > b.score;
                   });
  if (candidates.size() > top_k) candidates.resize(top_k);
  return candidates;
}

}  // namespace lodviz::rec
