#ifndef LODVIZ_REC_RECOMMENDER_H_
#define LODVIZ_REC_RECOMMENDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "stats/profile.h"
#include "viz/types.h"

namespace lodviz::rec {

/// A scored visualization suggestion with its justification — what the
/// survey's Table 1 "Recomm." column denotes (LinkDaViz, Vis Wizard,
/// LDVizWiz, LDVM [129, 131, 11, 29]): map the dataset's data types to
/// suitable visualization types.
struct Recommendation {
  viz::VisSpec spec;
  double score = 0.0;
  std::string reason;
};

/// Rule-based recommender over dataset profiles with a learned user
/// preference layer (Table 1 "Preferences"): accepted/rejected feedback
/// multiplies per-kind weights, personalizing future rankings.
class Recommender {
 public:
  Recommender() = default;

  /// Ranks visualization candidates for the dataset, best first.
  std::vector<Recommendation> Recommend(const stats::DatasetProfile& profile,
                                        size_t top_k = 5) const;

  /// Explicit preference multiplier for a visualization kind (1 = neutral).
  void SetPreference(viz::VisKind kind, double multiplier);
  double preference(viz::VisKind kind) const;

  /// Online feedback: `accepted` nudges the kind's weight up, otherwise
  /// down. Weights stay within [0.25, 4].
  void RecordFeedback(viz::VisKind kind, bool accepted);

 private:
  std::unordered_map<uint8_t, double> preferences_;
};

/// The data types present in a profile, in Table 1 terms (N/T/S/H/G).
std::vector<viz::DataType> DetectDataTypes(const stats::DatasetProfile& profile);

}  // namespace lodviz::rec

#endif  // LODVIZ_REC_RECOMMENDER_H_
