#ifndef LODVIZ_EXPLORE_FACETS_H_
#define LODVIZ_EXPLORE_FACETS_H_

#include <map>
#include <string>
#include <vector>

#include "rdf/triple_store.h"

namespace lodviz::explore {

/// One facet value with its count under the current selection.
struct FacetValue {
  rdf::TermId value = rdf::kInvalidTermId;
  std::string label;
  uint64_t count = 0;
};

/// One facet (a predicate whose values partition the matching entities).
struct Facet {
  rdf::TermId predicate = rdf::kInvalidTermId;
  std::string label;
  std::vector<FacetValue> values;  // sorted by count desc
};

/// Faceted browsing over a triple store (/facet, gFacet, Rhizomer
/// [62, 57, 30]): conjunctive refinement over predicate-value selections,
/// with counts recomputed against the current result set.
class FacetedBrowser {
 public:
  struct Options {
    /// Max distinct values for a predicate to qualify as a facet.
    uint64_t max_values = 64;
    /// Max facet values listed per facet (top by count).
    size_t top_values = 20;
  };

  FacetedBrowser(const rdf::TripleStore* store, Options options);
  explicit FacetedBrowser(const rdf::TripleStore* store)
      : FacetedBrowser(store, Options()) {}

  /// Entities matching the current selection (all subjects when empty).
  const std::vector<rdf::TermId>& Matching() const { return matching_; }
  size_t num_matching() const { return matching_.size(); }

  /// Available facets with counts under the current selection.
  std::vector<Facet> Facets() const;

  /// Adds a conjunctive constraint (predicate = value) and refines.
  Status Select(rdf::TermId predicate, rdf::TermId value);

  /// Removes the constraint on `predicate`.
  Status Deselect(rdf::TermId predicate);

  /// Clears all constraints.
  void Reset();

  /// Current constraints as (predicate, value).
  const std::map<rdf::TermId, rdf::TermId>& selection() const {
    return selection_;
  }

 private:
  void Recompute();

  const rdf::TripleStore* store_;
  Options options_;
  std::map<rdf::TermId, rdf::TermId> selection_;
  std::vector<rdf::TermId> matching_;  // sorted
};

}  // namespace lodviz::explore

#endif  // LODVIZ_EXPLORE_FACETS_H_
