#ifndef LODVIZ_EXPLORE_PROGRESSIVE_H_
#define LODVIZ_EXPLORE_PROGRESSIVE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "stats/moments.h"

namespace lodviz::explore {

/// A progressive (online-aggregation) estimate with a CLT confidence
/// interval — the incremental+approximate combination the survey
/// highlights (sampleAction/BlinkDB/VisReduce [46, 2, 69]): the user sees
/// an early answer with shrinking error bars instead of waiting for the
/// full scan.
struct ProgressiveEstimate {
  uint64_t rows_seen = 0;
  double mean = 0.0;
  /// Half-width of the 95% confidence interval on the mean.
  double ci95 = 0.0;
  /// Population-sum estimate (mean * population when known).
  double sum_estimate = 0.0;
  bool complete = false;
};

/// Streams chunks of a (pre-shuffled) value sequence and maintains the
/// running estimate. Callers poll Estimate() after each ProcessChunk.
class ProgressiveAggregator {
 public:
  /// `population_size` scales the sum estimate; 0 = unknown.
  explicit ProgressiveAggregator(uint64_t population_size = 0)
      : population_(population_size) {}

  void ProcessChunk(const double* values, size_t n);
  void ProcessChunk(const std::vector<double>& values) {
    ProcessChunk(values.data(), values.size());
  }

  /// Marks the stream exhausted (estimate becomes exact).
  void MarkComplete() { complete_ = true; }

  ProgressiveEstimate Estimate() const;

 private:
  stats::RunningMoments moments_;
  uint64_t population_;
  bool complete_ = false;
};

/// Drives a progressive aggregation over `values`: shuffles (so chunks are
/// uniform samples), then feeds chunks until the CI half-width falls below
/// `epsilon * |mean|` or data runs out. Returns the per-chunk estimates —
/// the convergence trajectory E3 plots.
std::vector<ProgressiveEstimate> RunProgressive(std::vector<double> values,
                                                size_t chunk_size,
                                                double epsilon, uint64_t seed);

}  // namespace lodviz::explore

#endif  // LODVIZ_EXPLORE_PROGRESSIVE_H_
