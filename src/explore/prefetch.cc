#include "explore/prefetch.h"

namespace lodviz::explore {

TilePrefetcher::TilePrefetcher(FetchFn fetch, Options options)
    : fetch_(std::move(fetch)),
      options_(options),
      cache_(options.cache_capacity) {}

std::vector<uint64_t> TilePrefetcher::FetchInto(const geo::TileKey& key) {
  ++backend_fetches_;
  std::vector<uint64_t> payload = fetch_(key);
  cache_.Put(key.Pack(), payload);
  return payload;
}

void TilePrefetcher::PrefetchAround(const geo::TileKey& key, int dx, int dy) {
  uint32_t n = 1u << key.zoom;
  auto try_prefetch = [&](int64_t x, int64_t y) {
    if (x < 0 || y < 0 || x >= static_cast<int64_t>(n) ||
        y >= static_cast<int64_t>(n)) {
      return;
    }
    geo::TileKey neighbor{key.zoom, static_cast<uint32_t>(x),
                          static_cast<uint32_t>(y)};
    if (!cache_.Contains(neighbor.Pack())) FetchInto(neighbor);
  };

  if (dx == 0 && dy == 0) {
    // No momentum: prefetch the 4-neighborhood.
    try_prefetch(static_cast<int64_t>(key.x) + 1, key.y);
    try_prefetch(static_cast<int64_t>(key.x) - 1, key.y);
    try_prefetch(key.x, static_cast<int64_t>(key.y) + 1);
    try_prefetch(key.x, static_cast<int64_t>(key.y) - 1);
  } else {
    // Momentum: fetch `lookahead` tiles in the movement direction.
    int sx = dx > 0 ? 1 : (dx < 0 ? -1 : 0);
    int sy = dy > 0 ? 1 : (dy < 0 ? -1 : 0);
    for (int step = 1; step <= options_.lookahead; ++step) {
      try_prefetch(static_cast<int64_t>(key.x) + sx * step,
                   static_cast<int64_t>(key.y) + sy * step);
    }
  }
  // Parent tile supports instant zoom-out.
  geo::TileKey parent = key.Parent();
  if (!(parent == key) && !cache_.Contains(parent.Pack())) {
    FetchInto(parent);
  }
}

std::vector<uint64_t> TilePrefetcher::Request(const geo::TileKey& key) {
  ++user_requests_;
  std::vector<uint64_t> result;
  const std::vector<uint64_t>* cached = cache_.Get(key.Pack());
  if (cached != nullptr) {
    ++user_hits_;
    // Copy before prefetching: PrefetchAround inserts into the cache and
    // may evict this entry, which would dangle the pointer.
    result = *cached;
  } else {
    result = FetchInto(key);
  }
  if (options_.enable_prefetch) {
    int dx = 0, dy = 0;
    if (has_last_ && last_.zoom == key.zoom) {
      dx = static_cast<int>(key.x) - static_cast<int>(last_.x);
      dy = static_cast<int>(key.y) - static_cast<int>(last_.y);
    }
    PrefetchAround(key, dx, dy);
  }
  last_ = key;
  has_last_ = true;
  return result;
}

}  // namespace lodviz::explore
