#include "explore/keyword.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace lodviz::explore {

KeywordIndex KeywordIndex::Build(const rdf::TripleStore& store,
                                 double label_boost) {
  KeywordIndex index;
  const rdf::Dictionary& dict = store.dict();
  rdf::TermId label_pred = dict.Lookup(rdf::Term::Iri(rdf::vocab::kRdfsLabel));

  std::unordered_map<rdf::TermId, uint32_t> doc_of;
  // term -> (doc -> weighted term frequency)
  std::unordered_map<std::string, std::unordered_map<uint32_t, double>> tf;

  store.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    const rdf::Term& obj = dict.term(t.o);
    if (!obj.is_literal()) return true;
    std::vector<std::string> tokens = TokenizeWords(obj.lexical);
    if (tokens.empty()) return true;

    auto [it, inserted] =
        doc_of.emplace(t.s, static_cast<uint32_t>(index.subjects_.size()));
    if (inserted) {
      index.subjects_.push_back(t.s);
      index.labels_.emplace_back();
      index.doc_lengths_.push_back(0.0);
    }
    uint32_t doc = it->second;
    double weight = (label_pred != rdf::kInvalidTermId && t.p == label_pred)
                        ? label_boost
                        : 1.0;
    if (t.p == label_pred && index.labels_[doc].empty()) {
      index.labels_[doc] = obj.lexical;
    }
    for (const std::string& token : tokens) {
      tf[token][doc] += weight;
      index.doc_lengths_[doc] += weight;
    }
    return true;
  });

  // Fill fallback labels with the subject IRI.
  for (size_t d = 0; d < index.subjects_.size(); ++d) {
    if (index.labels_[d].empty()) {
      index.labels_[d] = dict.term(index.subjects_[d]).lexical;
    }
  }

  // Convert to tf-idf postings.
  double n = static_cast<double>(index.subjects_.size());
  for (auto& [term, docs] : tf) {
    double idf = std::log((n + 1.0) / (static_cast<double>(docs.size()) + 1.0)) + 1.0;
    std::vector<Posting>& list = index.postings_[term];
    list.reserve(docs.size());
    for (const auto& [doc, freq] : docs) {
      double norm = std::max(1.0, index.doc_lengths_[doc]);
      list.push_back({doc, freq / norm * idf});
    }
    std::sort(list.begin(), list.end(),
              [](const Posting& a, const Posting& b) { return a.doc < b.doc; });
  }
  return index;
}

std::vector<SearchHit> KeywordIndex::Search(const std::string& query,
                                            size_t top_k) const {
  std::vector<std::string> terms = TokenizeWords(query);
  if (terms.empty()) return {};

  // Accumulate scores and term-match counts per doc.
  std::unordered_map<uint32_t, std::pair<double, int>> scores;
  int matched_terms = 0;
  for (const std::string& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) continue;
    ++matched_terms;
    for (const Posting& p : it->second) {
      auto& entry = scores[p.doc];
      entry.first += p.weight;
      entry.second += 1;
    }
  }
  if (matched_terms == 0) return {};

  // AND semantics first; OR fallback when no doc has all matched terms.
  std::vector<SearchHit> hits;
  for (int required : {matched_terms, 1}) {
    hits.clear();
    for (const auto& [doc, entry] : scores) {
      if (entry.second < required) continue;
      SearchHit hit;
      hit.subject = subjects_[doc];
      hit.score = entry.first;
      hit.label = labels_[doc];
      hits.push_back(std::move(hit));
    }
    if (!hits.empty()) break;
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.label < b.label;
  });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

size_t KeywordIndex::MemoryUsage() const {
  size_t bytes = subjects_.capacity() * sizeof(rdf::TermId) +
                 doc_lengths_.capacity() * sizeof(double);
  for (const std::string& l : labels_) bytes += l.capacity();
  for (const auto& [term, list] : postings_) {
    bytes += term.capacity() + list.capacity() * sizeof(Posting);
  }
  return bytes;
}

}  // namespace lodviz::explore
