#include "explore/browser.h"

#include <algorithm>
#include <sstream>

#include "rdf/vocab.h"

namespace lodviz::explore {

Result<ResourceView> ResourceBrowser::Describe(rdf::TermId resource) const {
  const rdf::Dictionary& dict = store_->dict();
  if (!dict.Contains(resource)) {
    return Status::NotFound("unknown resource id " + std::to_string(resource));
  }
  ResourceView view;
  view.resource = resource;
  view.iri = dict.term(resource).lexical;
  view.label = view.iri;

  rdf::TermId label_pred = dict.Lookup(rdf::Term::Iri(rdf::vocab::kRdfsLabel));
  store_->Scan({resource, rdf::kInvalidTermId, rdf::kInvalidTermId},
               [&](const rdf::Triple& t) {
                 PropertyRow row;
                 row.predicate = t.p;
                 row.predicate_label = dict.term(t.p).lexical;
                 row.value = dict.term(t.o);
                 if (row.value.is_iri() || row.value.is_blank()) {
                   row.link = t.o;
                 }
                 if (t.p == label_pred) view.label = row.value.lexical;
                 view.outgoing.push_back(std::move(row));
                 return true;
               });
  store_->Scan({rdf::kInvalidTermId, rdf::kInvalidTermId, resource},
               [&](const rdf::Triple& t) {
                 view.incoming.emplace_back(t.s, t.p);
                 return true;
               });
  std::sort(view.outgoing.begin(), view.outgoing.end(),
            [](const PropertyRow& a, const PropertyRow& b) {
              return a.predicate_label < b.predicate_label;
            });
  return view;
}

Result<ResourceView> ResourceBrowser::DescribeIri(const std::string& iri) const {
  rdf::TermId id = store_->dict().Lookup(rdf::Term::Iri(iri));
  if (id == rdf::kInvalidTermId) {
    return Status::NotFound("no such resource: " + iri);
  }
  return Describe(id);
}

Result<ResourceView> ResourceBrowser::Navigate(rdf::TermId resource) {
  LODVIZ_ASSIGN_OR_RETURN(ResourceView view, Describe(resource));
  history_.resize(position_);  // drop any forward entries
  history_.push_back(resource);
  position_ = history_.size();
  return view;
}

Result<ResourceView> ResourceBrowser::Back() {
  if (position_ <= 1) {
    return Status::OutOfRange("already at the start of history");
  }
  --position_;
  return Describe(history_[position_ - 1]);
}

std::string ResourceBrowser::Render(const ResourceView& view,
                                    size_t max_rows) const {
  std::ostringstream oss;
  oss << view.label << "  <" << view.iri << ">\n";
  size_t shown = 0;
  for (const PropertyRow& row : view.outgoing) {
    if (shown++ >= max_rows) {
      oss << "  ... (" << view.outgoing.size() - max_rows << " more)\n";
      break;
    }
    oss << "  " << row.predicate_label << " -> " << row.value.ToNTriples()
        << (row.link != rdf::kInvalidTermId ? "  [navigable]" : "") << "\n";
  }
  oss << "  (" << view.incoming.size() << " incoming links)\n";
  return oss.str();
}

}  // namespace lodviz::explore
