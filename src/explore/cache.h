#ifndef LODVIZ_EXPLORE_CACHE_H_
#define LODVIZ_EXPLORE_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

namespace lodviz::explore {

/// LRU result cache for interactive exploration (Section 4: "caching and
/// prefetching techniques may be exploited" [128, 16, 39]). Keys are
/// typically tile ids or query fingerprints; values the rendered/fetched
/// payloads.
///
/// Thread-compatibility contract: NOT thread-safe. Every method mutates
/// shared state (Get reorders the recency list), so an instance must be
/// confined to one thread or externally synchronized. This is deliberate —
/// the cache sits on the interactive session's event loop (one session,
/// one thread), and an internal mutex would serialize unrelated sessions
/// for nothing. Audited with the `concurrency.guarded_by` lint rule: the
/// class owns no mutex, so the rule (correctly) demands none of its
/// members be annotated.
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value or nullptr; refreshes recency on hit.
  [[nodiscard]] const V* Get(const K& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts/overwrites; evicts the least recently used beyond capacity.
  void Put(const K& key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
    if (map_.size() > capacity_) {
      auto& last = order_.back();
      map_.erase(last.first);
      order_.pop_back();
      ++evictions_;
    }
  }

  bool Contains(const K& key) const { return map_.count(key) > 0; }
  size_t size() const { return map_.size(); }
  size_t capacity() const { return capacity_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  double HitRate() const {
    uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
  }
  void ResetCounters() { hits_ = misses_ = evictions_ = 0; }

 private:
  size_t capacity_;
  std::list<std::pair<K, V>> order_;  // front = most recent
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace lodviz::explore

#endif  // LODVIZ_EXPLORE_CACHE_H_
