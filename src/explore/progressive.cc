#include "explore/progressive.h"

#include <cmath>

#include "common/stopwatch.h"
#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lodviz::explore {

void ProgressiveAggregator::ProcessChunk(const double* values, size_t n) {
  // Serial mode keeps the original sequential Welford adds: merging one
  // whole-chunk partial into non-empty moments_ would not be bit-identical
  // to adding each value in turn.
  if (n < 4096 || exec::SerialMode()) {
    for (size_t i = 0; i < n; ++i) moments_.Add(values[i]);
    return;
  }
  // Chan's pairwise combine: per-sub-chunk Welford partials merged in
  // ascending chunk order, so results are deterministic for a fixed grain.
  stats::RunningMoments partial = exec::ParallelReduce<stats::RunningMoments>(
      0, n, 4096,
      [&](size_t b, size_t e) {
        stats::RunningMoments m;
        for (size_t i = b; i < e; ++i) m.Add(values[i]);
        return m;
      },
      [](stats::RunningMoments& acc, stats::RunningMoments&& rhs) {
        acc.Merge(rhs);
      });
  moments_.Merge(partial);
}

ProgressiveEstimate ProgressiveAggregator::Estimate() const {
  ProgressiveEstimate est;
  est.rows_seen = moments_.count();
  est.mean = moments_.mean();
  est.complete = complete_;
  if (complete_) {
    est.ci95 = 0.0;
  } else if (moments_.count() > 1) {
    double se = std::sqrt(moments_.sample_variance() /
                          static_cast<double>(moments_.count()));
    // Finite-population correction when the population is known.
    if (population_ > 0 && moments_.count() < population_) {
      double fpc = std::sqrt(1.0 - static_cast<double>(moments_.count()) /
                                       static_cast<double>(population_));
      se *= fpc;
    }
    est.ci95 = 1.96 * se;
  }
  uint64_t scale = population_ > 0 ? population_ : moments_.count();
  est.sum_estimate = est.mean * static_cast<double>(scale);
  return est;
}

std::vector<ProgressiveEstimate> RunProgressive(std::vector<double> values,
                                                size_t chunk_size,
                                                double epsilon,
                                                uint64_t seed) {
  // Shuffle so each prefix is a uniform sample.
  Rng rng(seed);
  for (size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1], values[rng.Uniform(i)]);
  }

  LODVIZ_TRACE_SPAN("explore.progressive.run");
  static obs::Histogram* chunk_ns = &obs::MetricRegistry::Global().GetHistogram(
      "explore.progressive.chunk_ns");
  static obs::Counter* chunks =
      &obs::MetricRegistry::Global().GetCounter("explore.progressive.chunks");

  ProgressiveAggregator agg(values.size());
  std::vector<ProgressiveEstimate> trajectory;
  size_t pos = 0;
  while (pos < values.size()) {
    size_t n = std::min(chunk_size, values.size() - pos);
    Stopwatch chunk_sw;
    agg.ProcessChunk(values.data() + pos, n);
    chunk_ns->Record(static_cast<uint64_t>(chunk_sw.ElapsedNanos()));
    chunks->Increment();
    pos += n;
    if (pos >= values.size()) agg.MarkComplete();
    ProgressiveEstimate est = agg.Estimate();
    trajectory.push_back(est);
    if (!est.complete && est.rows_seen > 30 &&
        est.ci95 <= epsilon * std::abs(est.mean)) {
      break;  // early answer is good enough
    }
  }
  return trajectory;
}

}  // namespace lodviz::explore
