#include "explore/interest.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace lodviz::explore {

namespace {

using PredValue = std::pair<rdf::TermId, rdf::TermId>;

struct PredValueHash {
  size_t operator()(const PredValue& pv) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(pv.first) << 32) |
                                 pv.second);
  }
};

}  // namespace

void InterestModel::MarkInteresting(rdf::TermId subject) {
  marked_.insert(subject);
}

void InterestModel::ClearMarks() { marked_.clear(); }

std::vector<InterestSignal> InterestModel::TopSignals(size_t k) const {
  if (marked_.empty()) return {};
  const rdf::Dictionary& dict = store_->dict();

  // Count (predicate, value) occurrences among marked subjects and among
  // distinct subjects overall. Only IRI/literal object values qualify.
  std::unordered_map<PredValue, uint64_t, PredValueHash> marked_counts;
  std::unordered_map<PredValue, uint64_t, PredValueHash> all_counts;
  std::unordered_set<rdf::TermId> all_subjects;
  store_->Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    all_subjects.insert(t.s);
    PredValue pv{t.p, t.o};
    ++all_counts[pv];
    if (marked_.count(t.s)) ++marked_counts[pv];
    return true;
  });

  double n_all = static_cast<double>(all_subjects.size());
  double n_marked = static_cast<double>(marked_.size());
  if (n_all == 0) return {};

  std::vector<InterestSignal> signals;
  for (const auto& [pv, support] : marked_counts) {
    // Ignore values every marked entity trivially has in common with the
    // whole dataset or that only one marked entity carries (noise).
    if (support < std::max<uint64_t>(1, marked_.size() / 2)) continue;
    double p_marked = static_cast<double>(support) / n_marked;
    double p_all = static_cast<double>(all_counts[pv]) / n_all;
    if (p_all <= 0) continue;
    double lift = p_marked / p_all;
    if (lift <= 1.05) continue;  // not discriminating
    InterestSignal signal;
    signal.predicate = pv.first;
    signal.value = pv.second;
    signal.predicate_label = dict.term(pv.first).lexical;
    signal.value_label = dict.term(pv.second).lexical;
    signal.lift = lift;
    signal.support = support;
    signals.push_back(std::move(signal));
  }
  std::sort(signals.begin(), signals.end(),
            [](const InterestSignal& a, const InterestSignal& b) {
              if (a.lift != b.lift) return a.lift > b.lift;
              return a.support > b.support;
            });
  if (signals.size() > k) signals.resize(k);
  return signals;
}

std::vector<std::pair<rdf::TermId, double>> InterestModel::SuggestEntities(
    size_t k) const {
  std::vector<InterestSignal> signals = TopSignals(25);
  if (signals.empty()) return {};

  std::unordered_map<rdf::TermId, double> scores;
  for (const InterestSignal& signal : signals) {
    store_->Scan({rdf::kInvalidTermId, signal.predicate, signal.value},
                 [&](const rdf::Triple& t) {
                   if (!marked_.count(t.s)) scores[t.s] += signal.lift;
                   return true;
                 });
  }
  std::vector<std::pair<rdf::TermId, double>> ranked(scores.begin(),
                                                     scores.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace lodviz::explore
