#ifndef LODVIZ_EXPLORE_SUMMARY_H_
#define LODVIZ_EXPLORE_SUMMARY_H_

#include <string>
#include <vector>

#include "rdf/triple_store.h"

namespace lodviz::explore {

/// A schema-level summary of a WoD source (the LODeX "representative
/// visual summary" [19] and the overview LDVizWiz extracts): classes with
/// instance counts, typed predicate edges between classes, and per-class
/// datatype properties — small enough to draw even when the instance
/// graph is not.
struct SchemaSummary {
  struct ClassNode {
    rdf::TermId cls = rdf::kInvalidTermId;  ///< kInvalid = untyped bucket
    std::string label;
    uint64_t instances = 0;
  };
  struct SchemaEdge {
    size_t from = 0;  ///< index into classes
    size_t to = 0;
    rdf::TermId predicate = rdf::kInvalidTermId;
    std::string predicate_label;
    uint64_t count = 0;
  };
  struct DatatypeProperty {
    size_t cls = 0;  ///< index into classes
    rdf::TermId predicate = rdf::kInvalidTermId;
    std::string predicate_label;
    uint64_t count = 0;
  };

  std::vector<ClassNode> classes;    // sorted by instances desc
  std::vector<SchemaEdge> edges;     // sorted by count desc
  std::vector<DatatypeProperty> datatype_properties;  // sorted by count desc
  uint64_t total_triples = 0;
  uint64_t total_entities = 0;

  /// Compact ASCII rendering.
  std::string ToString(size_t max_rows = 15) const;
};

/// One pass over the store: assigns each subject its first rdf:type (or
/// the untyped bucket) and aggregates class/edge/property counts.
SchemaSummary BuildSchemaSummary(const rdf::TripleStore& store);

}  // namespace lodviz::explore

#endif  // LODVIZ_EXPLORE_SUMMARY_H_
