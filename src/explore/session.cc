#include "explore/session.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/metrics.h"

namespace lodviz::explore {

std::string_view OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kLoad:
      return "load";
    case OpKind::kQuery:
      return "query";
    case OpKind::kKeywordSearch:
      return "search";
    case OpKind::kFacetSelect:
      return "facet";
    case OpKind::kZoom:
      return "zoom";
    case OpKind::kPan:
      return "pan";
    case OpKind::kDrillDown:
      return "drill-down";
    case OpKind::kRollUp:
      return "roll-up";
    case OpKind::kRender:
      return "render";
  }
  return "?";
}

void SessionLog::Record(OpKind kind, std::string detail, double latency_ms,
                        uint64_t objects_touched) {
  static obs::Counter* ops_counter =
      &obs::MetricRegistry::Global().GetCounter("explore.session.ops");
  static obs::Histogram* op_us =
      &obs::MetricRegistry::Global().GetHistogram("explore.session.op_us");
  ops_counter->Increment();
  op_us->RecordDouble(latency_ms * 1e3);
  ops_.push_back({kind, std::move(detail), latency_ms, objects_touched});
}

double SessionLog::TotalLatencyMs() const {
  double total = 0;
  for (const SessionOp& op : ops_) total += op.latency_ms;
  return total;
}

double SessionLog::MaxLatencyMs() const {
  double best = 0;
  for (const SessionOp& op : ops_) best = std::max(best, op.latency_ms);
  return best;
}

double SessionLog::MeanLatencyMs() const {
  return ops_.empty() ? 0.0 : TotalLatencyMs() / static_cast<double>(ops_.size());
}

double SessionLog::LatencyQuantileMs(double q) const {
  if (ops_.empty()) return 0.0;
  std::vector<double> latencies;
  latencies.reserve(ops_.size());
  for (const SessionOp& op : ops_) latencies.push_back(op.latency_ms);
  std::sort(latencies.begin(), latencies.end());
  size_t idx = static_cast<size_t>(
      std::min<double>(latencies.size() - 1,
                       q * static_cast<double>(latencies.size())));
  return latencies[idx];
}

std::string SessionLog::ToString(size_t max_ops) const {
  std::ostringstream oss;
  size_t shown = 0;
  for (const SessionOp& op : ops_) {
    if (shown++ >= max_ops) {
      oss << "... (" << ops_.size() - max_ops << " more)\n";
      break;
    }
    oss << OpKindName(op.kind) << " " << op.detail << " — "
        << op.latency_ms << " ms, " << op.objects_touched << " objects\n";
  }
  return oss.str();
}

}  // namespace lodviz::explore
