#ifndef LODVIZ_EXPLORE_BROWSER_H_
#define LODVIZ_EXPLORE_BROWSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"

namespace lodviz::explore {

/// One property-value row of a resource view.
struct PropertyRow {
  rdf::TermId predicate = rdf::kInvalidTermId;
  std::string predicate_label;
  rdf::Term value;
  /// Set when the value is an IRI/blank that can be navigated to.
  rdf::TermId link = rdf::kInvalidTermId;
};

/// Everything a WoD browser shows about one resource (the Disco/Tabulator
/// "HTML table with property-value pairs" of Section 3.1).
struct ResourceView {
  rdf::TermId resource = rdf::kInvalidTermId;
  std::string iri;
  std::string label;  ///< rdfs:label if present, else the IRI
  std::vector<PropertyRow> outgoing;
  /// (subject, predicate) pairs pointing *at* this resource.
  std::vector<std::pair<rdf::TermId, rdf::TermId>> incoming;
};

/// Link-navigation resource browser (Haystack, Disco, Tabulator,
/// LodLive): describe a resource, follow links, go back — the most basic
/// WoD exploration workflow, here over the shared triple store.
class ResourceBrowser {
 public:
  explicit ResourceBrowser(const rdf::TripleStore* store) : store_(store) {}

  /// Describes a resource without touching navigation history.
  Result<ResourceView> Describe(rdf::TermId resource) const;
  Result<ResourceView> DescribeIri(const std::string& iri) const;

  /// Navigates to a resource (pushes onto the history).
  Result<ResourceView> Navigate(rdf::TermId resource);

  /// Returns to the previous resource; error at the start of history.
  Result<ResourceView> Back();

  const std::vector<rdf::TermId>& history() const { return history_; }
  /// Resource currently shown (kInvalidTermId before first Navigate).
  rdf::TermId current() const {
    return position_ == 0 ? rdf::kInvalidTermId : history_[position_ - 1];
  }

  /// ASCII rendering of a view (examples/CLI).
  std::string Render(const ResourceView& view, size_t max_rows = 25) const;

 private:
  const rdf::TripleStore* store_;
  std::vector<rdf::TermId> history_;
  size_t position_ = 0;  // number of valid entries
};

}  // namespace lodviz::explore

#endif  // LODVIZ_EXPLORE_BROWSER_H_
