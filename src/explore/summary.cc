#include "explore/summary.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "rdf/vocab.h"

namespace lodviz::explore {

SchemaSummary BuildSchemaSummary(const rdf::TripleStore& store) {
  const rdf::Dictionary& dict = store.dict();
  SchemaSummary summary;
  summary.total_triples = store.size();

  rdf::TermId type_pred = dict.Lookup(rdf::Term::Iri(rdf::vocab::kRdfType));

  // Subject -> class (first type wins; kInvalid = untyped).
  std::unordered_map<rdf::TermId, rdf::TermId> subject_class;
  if (type_pred != rdf::kInvalidTermId) {
    store.Scan({rdf::kInvalidTermId, type_pred, rdf::kInvalidTermId},
               [&](const rdf::Triple& t) {
                 subject_class.emplace(t.s, t.o);
                 return true;
               });
  }

  // Class index (created on demand; index 0+ in insertion order).
  std::unordered_map<rdf::TermId, size_t> class_index;
  auto class_of = [&](rdf::TermId subject) {
    rdf::TermId cls = rdf::kInvalidTermId;
    auto it = subject_class.find(subject);
    if (it != subject_class.end()) cls = it->second;
    auto [idx_it, inserted] = class_index.emplace(cls, summary.classes.size());
    if (inserted) {
      SchemaSummary::ClassNode node;
      node.cls = cls;
      node.label = cls == rdf::kInvalidTermId ? "(untyped)"
                                              : dict.term(cls).lexical;
      summary.classes.push_back(std::move(node));
    }
    return idx_it->second;
  };

  // Count instances per class.
  for (rdf::TermId subject : store.DistinctSubjects()) {
    ++summary.classes[class_of(subject)].instances;
    ++summary.total_entities;
  }

  // Aggregate edges and datatype properties.
  std::map<std::tuple<size_t, size_t, rdf::TermId>, uint64_t> edge_counts;
  std::map<std::pair<size_t, rdf::TermId>, uint64_t> prop_counts;
  store.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    if (t.p == type_pred) return true;
    size_t from = class_of(t.s);
    const rdf::Term& obj = dict.term(t.o);
    if (obj.is_iri() || obj.is_blank()) {
      size_t to = class_of(t.o);
      ++edge_counts[{from, to, t.p}];
    } else {
      ++prop_counts[{from, t.p}];
    }
    return true;
  });

  for (const auto& [key, count] : edge_counts) {
    SchemaSummary::SchemaEdge edge;
    edge.from = std::get<0>(key);
    edge.to = std::get<1>(key);
    edge.predicate = std::get<2>(key);
    edge.predicate_label = dict.term(edge.predicate).lexical;
    edge.count = count;
    summary.edges.push_back(std::move(edge));
  }
  for (const auto& [key, count] : prop_counts) {
    SchemaSummary::DatatypeProperty prop;
    prop.cls = key.first;
    prop.predicate = key.second;
    prop.predicate_label = dict.term(key.second).lexical;
    prop.count = count;
    summary.datatype_properties.push_back(std::move(prop));
  }

  std::sort(summary.classes.begin(), summary.classes.end(),
            [](const auto& a, const auto& b) {
              return a.instances > b.instances;
            });
  // Re-point edge/property class indexes after the sort.
  std::vector<size_t> remap(summary.classes.size());
  {
    // Build old-index -> new-index map via class term id.
    std::unordered_map<rdf::TermId, size_t> new_index;
    for (size_t i = 0; i < summary.classes.size(); ++i) {
      new_index[summary.classes[i].cls] = i;
    }
    std::vector<size_t> old_to_new(summary.classes.size());
    for (const auto& [cls, old_idx] : class_index) {
      old_to_new[old_idx] = new_index[cls];
    }
    remap = std::move(old_to_new);
  }
  for (auto& e : summary.edges) {
    e.from = remap[e.from];
    e.to = remap[e.to];
  }
  for (auto& p : summary.datatype_properties) p.cls = remap[p.cls];

  std::sort(summary.edges.begin(), summary.edges.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });
  std::sort(summary.datatype_properties.begin(),
            summary.datatype_properties.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });
  return summary;
}

std::string SchemaSummary::ToString(size_t max_rows) const {
  std::ostringstream oss;
  oss << "Schema summary: " << total_entities << " entities, "
      << total_triples << " triples, " << classes.size() << " classes\n";
  oss << "Classes:\n";
  size_t shown = 0;
  for (const ClassNode& c : classes) {
    if (shown++ >= max_rows) break;
    oss << "  " << c.label << " (" << c.instances << ")\n";
  }
  oss << "Links between classes:\n";
  shown = 0;
  for (const SchemaEdge& e : edges) {
    if (shown++ >= max_rows) break;
    oss << "  " << classes[e.from].label << " --" << e.predicate_label
        << "--> " << classes[e.to].label << " (" << e.count << ")\n";
  }
  oss << "Datatype properties:\n";
  shown = 0;
  for (const DatatypeProperty& p : datatype_properties) {
    if (shown++ >= max_rows) break;
    oss << "  " << classes[p.cls].label << " . " << p.predicate_label << " ("
        << p.count << ")\n";
  }
  return oss.str();
}

}  // namespace lodviz::explore
