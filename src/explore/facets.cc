#include "explore/facets.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace lodviz::explore {

FacetedBrowser::FacetedBrowser(const rdf::TripleStore* store, Options options)
    : store_(store), options_(options) {
  Recompute();
}

void FacetedBrowser::Recompute() {
  if (selection_.empty()) {
    matching_ = store_->DistinctSubjects();
    return;
  }
  // Intersect subjects per constraint, starting from the most selective.
  std::vector<std::vector<rdf::TermId>> subject_sets;
  for (const auto& [pred, value] : selection_) {
    std::vector<rdf::TermId> subjects;
    store_->Scan({rdf::kInvalidTermId, pred, value}, [&](const rdf::Triple& t) {
      subjects.push_back(t.s);
      return true;
    });
    std::sort(subjects.begin(), subjects.end());
    subjects.erase(std::unique(subjects.begin(), subjects.end()),
                   subjects.end());
    subject_sets.push_back(std::move(subjects));
  }
  std::sort(subject_sets.begin(), subject_sets.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  matching_ = subject_sets.front();
  for (size_t i = 1; i < subject_sets.size(); ++i) {
    std::vector<rdf::TermId> merged;
    std::set_intersection(matching_.begin(), matching_.end(),
                          subject_sets[i].begin(), subject_sets[i].end(),
                          std::back_inserter(merged));
    matching_ = std::move(merged);
  }
}

std::vector<Facet> FacetedBrowser::Facets() const {
  const rdf::Dictionary& dict = store_->dict();
  std::unordered_set<rdf::TermId> match_set(matching_.begin(),
                                            matching_.end());

  std::vector<Facet> facets;
  for (const auto& [pred, total] : store_->predicate_counts()) {
    if (selection_.count(pred)) continue;  // already constrained
    // Count values over the matching set only.
    std::unordered_map<rdf::TermId, uint64_t> counts;
    bool facetable = true;
    store_->Scan({rdf::kInvalidTermId, pred, rdf::kInvalidTermId},
                 [&](const rdf::Triple& t) {
                   if (!match_set.count(t.s)) return true;
                   ++counts[t.o];
                   if (counts.size() > options_.max_values) {
                     facetable = false;
                     return false;
                   }
                   return true;
                 });
    if (!facetable || counts.empty()) continue;

    Facet facet;
    facet.predicate = pred;
    facet.label = dict.term(pred).lexical;
    for (const auto& [value, count] : counts) {
      FacetValue fv;
      fv.value = value;
      fv.label = dict.term(value).lexical;
      fv.count = count;
      facet.values.push_back(std::move(fv));
    }
    std::sort(facet.values.begin(), facet.values.end(),
              [](const FacetValue& a, const FacetValue& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.label < b.label;
              });
    if (facet.values.size() > options_.top_values) {
      facet.values.resize(options_.top_values);
    }
    facets.push_back(std::move(facet));
  }
  std::sort(facets.begin(), facets.end(),
            [](const Facet& a, const Facet& b) { return a.label < b.label; });
  return facets;
}

Status FacetedBrowser::Select(rdf::TermId predicate, rdf::TermId value) {
  if (!store_->dict().Contains(predicate) || !store_->dict().Contains(value)) {
    return Status::NotFound("unknown predicate or value term");
  }
  selection_[predicate] = value;
  Recompute();
  return Status::OK();
}

Status FacetedBrowser::Deselect(rdf::TermId predicate) {
  if (selection_.erase(predicate) == 0) {
    return Status::NotFound("predicate was not selected");
  }
  Recompute();
  return Status::OK();
}

void FacetedBrowser::Reset() {
  selection_.clear();
  Recompute();
}

}  // namespace lodviz::explore
