#include "explore/explain.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace lodviz::explore {

namespace {

using PredValue = std::pair<rdf::TermId, rdf::TermId>;

struct PredValueHash {
  size_t operator()(const PredValue& pv) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(pv.first) << 32) |
                                 pv.second);
  }
};

}  // namespace

std::vector<rdf::TermId> TopValueSubjects(const rdf::TripleStore& store,
                                          rdf::TermId target_property,
                                          size_t k) {
  std::vector<std::pair<double, rdf::TermId>> scored;
  const rdf::Dictionary& dict = store.dict();
  store.Scan({rdf::kInvalidTermId, target_property, rdf::kInvalidTermId},
             [&](const rdf::Triple& t) {
               Result<double> v = dict.term(t.o).AsDouble();
               if (v.ok()) scored.emplace_back(v.ValueOrDie(), t.s);
               return true;
             });
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  std::vector<rdf::TermId> out;
  for (size_t i = 0; i < std::min(k, scored.size()); ++i) {
    out.push_back(scored[i].second);
  }
  return out;
}

Result<std::vector<Explanation>> ExplainDeviation(
    const rdf::TripleStore& store, rdf::TermId target_property,
    const std::vector<rdf::TermId>& outliers, size_t top_k) {
  if (outliers.empty()) {
    return Status::InvalidArgument("need at least one outlier entity");
  }
  const rdf::Dictionary& dict = store.dict();
  std::unordered_set<rdf::TermId> outlier_set(outliers.begin(),
                                              outliers.end());

  // Target value per outlier.
  std::unordered_map<rdf::TermId, double> target;
  store.Scan({rdf::kInvalidTermId, target_property, rdf::kInvalidTermId},
             [&](const rdf::Triple& t) {
               if (!outlier_set.count(t.s)) return true;
               Result<double> v = dict.term(t.o).AsDouble();
               if (v.ok()) target[t.s] = v.ValueOrDie();
               return true;
             });
  if (target.empty()) {
    return Status::NotFound("no outlier has a numeric target value");
  }
  double group_sum = 0.0;
  for (const auto& [s, v] : target) group_sum += v;
  double group_n = static_cast<double>(target.size());
  double group_mean = group_sum / group_n;

  // Facet membership over the outlier group (target property excluded).
  std::unordered_map<PredValue, std::vector<rdf::TermId>, PredValueHash>
      facets;
  store.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    if (t.p == target_property) return true;
    if (!outlier_set.count(t.s) || !target.count(t.s)) return true;
    facets[{t.p, t.o}].push_back(t.s);
    return true;
  });

  std::vector<Explanation> out;
  for (const auto& [pv, members] : facets) {
    if (members.size() < 2 || members.size() == target.size()) continue;
    double facet_sum = 0.0;
    for (rdf::TermId s : members) facet_sum += target[s];
    double facet_n = static_cast<double>(members.size());
    double mean_without =
        (group_sum - facet_sum) / (group_n - facet_n);
    Explanation e;
    e.predicate = pv.first;
    e.value = pv.second;
    e.predicate_label = dict.term(pv.first).lexical;
    e.value_label = dict.term(pv.second).lexical;
    e.influence = group_mean - mean_without;
    e.support = members.size();
    e.facet_mean = facet_sum / facet_n;
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(), [](const Explanation& a,
                                       const Explanation& b) {
    if (std::abs(a.influence) != std::abs(b.influence)) {
      return std::abs(a.influence) > std::abs(b.influence);
    }
    return a.support > b.support;
  });
  if (out.size() > top_k) out.resize(top_k);
  return out;
}

}  // namespace lodviz::explore
