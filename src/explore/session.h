#ifndef LODVIZ_EXPLORE_SESSION_H_
#define LODVIZ_EXPLORE_SESSION_H_

#include <string>
#include <vector>

namespace lodviz::explore {

/// Kinds of user operations in an exploratory scenario (Section 2: "users
/// perform a sequence of operations in which the result of each operation
/// determines the formulation of the next").
enum class OpKind {
  kLoad,
  kQuery,
  kKeywordSearch,
  kFacetSelect,
  kZoom,
  kPan,
  kDrillDown,
  kRollUp,
  kRender,
};

std::string_view OpKindName(OpKind kind);

/// One logged operation with its latency and touched-object count.
struct SessionOp {
  OpKind kind = OpKind::kQuery;
  std::string detail;
  double latency_ms = 0.0;
  uint64_t objects_touched = 0;
};

/// Append-only log of an exploration session, with latency summaries —
/// the instrument the claim benches use to report per-operation and
/// cumulative costs.
class SessionLog {
 public:
  void Record(OpKind kind, std::string detail, double latency_ms,
              uint64_t objects_touched = 0);

  const std::vector<SessionOp>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }

  double TotalLatencyMs() const;
  double MaxLatencyMs() const;
  double MeanLatencyMs() const;
  /// Latency at the given quantile (0..1) over all ops.
  double LatencyQuantileMs(double q) const;

  /// Compact textual trace.
  std::string ToString(size_t max_ops = 50) const;

 private:
  std::vector<SessionOp> ops_;
};

}  // namespace lodviz::explore

#endif  // LODVIZ_EXPLORE_SESSION_H_
