#ifndef LODVIZ_EXPLORE_KEYWORD_H_
#define LODVIZ_EXPLORE_KEYWORD_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/triple_store.h"

namespace lodviz::explore {

/// A scored keyword hit.
struct SearchHit {
  rdf::TermId subject = rdf::kInvalidTermId;
  double score = 0.0;
  std::string label;
};

/// Tf-idf inverted index over the literal objects of a triple store
/// (labels, comments, any text). This is the "Keyword" capability of the
/// survey's Table 2 (VisiNav, LodLive, graphVizdb...): find start nodes by
/// text, then explore structurally from there.
class KeywordIndex {
 public:
  /// Indexes every (subject, literal-object) pair in `store`.
  /// rdfs:label tokens get `label_boost` times the weight.
  static KeywordIndex Build(const rdf::TripleStore& store,
                            double label_boost = 2.0);

  /// Top-k subjects matching the query (AND semantics across terms; falls
  /// back to OR when the conjunction is empty).
  std::vector<SearchHit> Search(const std::string& query,
                                size_t top_k = 10) const;

  size_t num_documents() const { return doc_lengths_.size(); }
  size_t num_terms() const { return postings_.size(); }
  size_t MemoryUsage() const;

 private:
  struct Posting {
    uint32_t doc = 0;  // index into subjects_
    double weight = 0.0;
  };

  std::vector<rdf::TermId> subjects_;          // doc id -> subject term
  std::vector<std::string> labels_;            // doc id -> display label
  std::vector<double> doc_lengths_;            // weighted token count
  std::unordered_map<std::string, std::vector<Posting>> postings_;
};

}  // namespace lodviz::explore

#endif  // LODVIZ_EXPLORE_KEYWORD_H_
