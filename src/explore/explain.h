#ifndef LODVIZ_EXPLORE_EXPLAIN_H_
#define LODVIZ_EXPLORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"

namespace lodviz::explore {

/// One candidate explanation: removing the entities carrying this
/// (predicate, value) facet moves the outlier group's aggregate by
/// `influence` toward normal.
struct Explanation {
  rdf::TermId predicate = rdf::kInvalidTermId;
  rdf::TermId value = rdf::kInvalidTermId;
  std::string predicate_label;
  std::string value_label;
  /// Change of the outlier group's mean if the matching entities were
  /// removed (signed; large magnitude = strong explanation).
  double influence = 0.0;
  /// Outlier entities carrying the facet.
  uint64_t support = 0;
  /// Mean of the target property over facet-matching outliers.
  double facet_mean = 0.0;
};

/// Scorpion-style outlier explanation [141] ("systems provide
/// explanations regarding data trends and anomalies", Section 2): given a
/// group of outlier entities and the numeric property whose aggregate
/// looks anomalous, rank the facets whose removal best normalizes the
/// group — i.e. the attribute values that *cause* the anomaly.
///
/// `outliers` are subject term ids; `target_property` must have numeric
/// objects. Facets with support < 2 are ignored as noise.
Result<std::vector<Explanation>> ExplainDeviation(
    const rdf::TripleStore& store, rdf::TermId target_property,
    const std::vector<rdf::TermId>& outliers, size_t top_k = 5);

/// Convenience: the `k` subjects with the highest values of
/// `target_property` (a simple way to pick an outlier group).
std::vector<rdf::TermId> TopValueSubjects(const rdf::TripleStore& store,
                                          rdf::TermId target_property,
                                          size_t k);

}  // namespace lodviz::explore

#endif  // LODVIZ_EXPLORE_EXPLAIN_H_
