#ifndef LODVIZ_EXPLORE_PREFETCH_H_
#define LODVIZ_EXPLORE_PREFETCH_H_

#include <functional>
#include <vector>

#include "explore/cache.h"
#include "geo/tiles.h"

namespace lodviz::explore {

/// Tile access layer with an LRU cache and a momentum-based prefetcher
/// (ForeCache/ATLAS-style [16, 33]): after each request, the tiles ahead
/// in the user's current panning direction (plus the parent for zoom-out)
/// are fetched speculatively, hiding backend latency from interaction.
///
/// Thread-compatibility contract: NOT thread-safe, like the LruCache it
/// wraps. Request() mutates the cache, the momentum state (last_key_,
/// has_last_) and the hit counters; one instance belongs to one
/// interactive session on one thread. A future concurrent serving layer
/// must give each session its own prefetcher (they share nothing) rather
/// than lock a global one.
class TilePrefetcher {
 public:
  /// `fetch` produces a tile payload (counted as a backend access).
  using FetchFn = std::function<std::vector<uint64_t>(const geo::TileKey&)>;

  struct Options {
    size_t cache_capacity = 256;
    /// Tiles fetched ahead in the movement direction.
    int lookahead = 2;
    bool enable_prefetch = true;
  };

  TilePrefetcher(FetchFn fetch, Options options);

  /// Serves a tile (from cache or backend) and, if enabled, prefetches
  /// ahead based on the delta from the previous request.
  std::vector<uint64_t> Request(const geo::TileKey& key);

  uint64_t backend_fetches() const { return backend_fetches_; }
  /// Fraction of user requests served from cache.
  double UserHitRate() const {
    return user_requests_
               ? static_cast<double>(user_hits_) /
                     static_cast<double>(user_requests_)
               : 0.0;
  }
  uint64_t user_requests() const { return user_requests_; }

 private:
  std::vector<uint64_t> FetchInto(const geo::TileKey& key);
  void PrefetchAround(const geo::TileKey& key, int dx, int dy);

  FetchFn fetch_;
  Options options_;
  LruCache<uint64_t, std::vector<uint64_t>> cache_;
  bool has_last_ = false;
  geo::TileKey last_{};
  uint64_t backend_fetches_ = 0;
  uint64_t user_requests_ = 0;
  uint64_t user_hits_ = 0;
};

}  // namespace lodviz::explore

#endif  // LODVIZ_EXPLORE_PREFETCH_H_
