#ifndef LODVIZ_EXPLORE_INTEREST_H_
#define LODVIZ_EXPLORE_INTEREST_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "rdf/triple_store.h"

namespace lodviz::explore {

/// A (predicate, value) signal that distinguishes the user's marked
/// entities from the dataset at large.
struct InterestSignal {
  rdf::TermId predicate = rdf::kInvalidTermId;
  rdf::TermId value = rdf::kInvalidTermId;
  std::string predicate_label;
  std::string value_label;
  /// Lift = P(value | interesting) / P(value | all); > 1 means
  /// over-represented among the marked entities.
  double lift = 0.0;
  /// Marked entities carrying the signal.
  uint64_t support = 0;
};

/// Explore-by-example-style steering (Section 2, ref [37]): the user
/// marks a few entities as interesting; the model learns which
/// (predicate, value) facets over-represent them and suggests unseen
/// entities ranked by those signals — "capturing user interests, guide
/// her to interesting data parts".
class InterestModel {
 public:
  explicit InterestModel(const rdf::TripleStore* store) : store_(store) {}

  /// Marks an entity as interesting (idempotent).
  void MarkInteresting(rdf::TermId subject);
  void ClearMarks();
  size_t num_marked() const { return marked_.size(); }

  /// The strongest discriminating facets, by lift (requires >= 1 mark).
  std::vector<InterestSignal> TopSignals(size_t k = 10) const;

  /// Unmarked entities ranked by how many high-lift signals they share
  /// (score = sum of matched signal lifts).
  std::vector<std::pair<rdf::TermId, double>> SuggestEntities(
      size_t k = 10) const;

 private:
  const rdf::TripleStore* store_;
  std::unordered_set<rdf::TermId> marked_;
};

}  // namespace lodviz::explore

#endif  // LODVIZ_EXPLORE_INTEREST_H_
