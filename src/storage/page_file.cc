#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lodviz::storage {

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageFile::Open(const std::string& path, bool truncate) {
  if (fd_ >= 0) return Status::InvalidArgument("PageFile already open");
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  path_ = path;
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::IoError("lseek failed");
  num_pages_.store(
      static_cast<uint32_t>(static_cast<uint64_t>(size) / kPageSize),
      std::memory_order_relaxed);
  return Status::OK();
}

Status PageFile::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) return Status::IoError("close failed");
    fd_ = -1;
  }
  return Status::OK();
}

Result<PageId> PageFile::AllocatePage() {
  if (fd_ < 0) return Status::InvalidArgument("PageFile not open");
  // Hold grow_mu_ across the read-modify-write so two concurrent
  // allocators cannot claim the same page id.
  MutexLock lock(&grow_mu_);
  PageId id = num_pages_.load(std::memory_order_relaxed);
  char zeros[kPageSize] = {};
  LODVIZ_RETURN_NOT_OK(WritePage(id, zeros));  // bumps num_pages_ to id + 1
  return id;
}

ssize_t PageFile::PreadSome(void* buf, size_t count, off_t offset) {
  return ::pread(fd_, buf, count, offset);
}

ssize_t PageFile::PwriteSome(const void* buf, size_t count, off_t offset) {
  return ::pwrite(fd_, buf, count, offset);
}

Status PageFile::ReadPage(PageId id, void* buf) {
  // A single pread may legally transfer fewer than kPageSize bytes (or
  // fail with EINTR); treating that as a hard error corrupted reads on
  // signal-heavy hosts. Keep issuing reads at the advancing offset until
  // the page is complete.
  char* dst = static_cast<char*>(buf);
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = PreadSome(dst + done, kPageSize - done,
                          static_cast<off_t>(id) * static_cast<off_t>(kPageSize) +
                              static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("read of page " + std::to_string(id) + ": " +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("short read of page " + std::to_string(id) +
                             " (eof at byte " + std::to_string(done) + ")");
    }
    done += static_cast<size_t>(n);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const void* buf) {
  const char* src = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < kPageSize) {
    ssize_t n = PwriteSome(src + done, kPageSize - done,
                           static_cast<off_t>(id) * static_cast<off_t>(kPageSize) +
                               static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write of page " + std::to_string(id) + ": " +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::IoError("short write of page " + std::to_string(id) +
                             " (stalled at byte " + std::to_string(done) + ")");
    }
    done += static_cast<size_t>(n);
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  // Grow the page count monotonically (CAS loop: concurrent writers may
  // both extend the file; keep the max).
  uint32_t n = num_pages_.load(std::memory_order_relaxed);
  while (id >= n && !num_pages_.compare_exchange_weak(
                        n, id + 1, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status PageFile::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("PageFile not open");
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(std::string("fdatasync: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace lodviz::storage
