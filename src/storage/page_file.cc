#include "storage/page_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lodviz::storage {

PageFile::~PageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageFile::Open(const std::string& path, bool truncate) {
  if (fd_ >= 0) return Status::InvalidArgument("PageFile already open");
  int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::IoError("open '" + path + "': " + std::strerror(errno));
  }
  path_ = path;
  off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size < 0) return Status::IoError("lseek failed");
  num_pages_ = static_cast<uint32_t>(static_cast<uint64_t>(size) / kPageSize);
  return Status::OK();
}

Status PageFile::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) return Status::IoError("close failed");
    fd_ = -1;
  }
  return Status::OK();
}

Result<PageId> PageFile::AllocatePage() {
  if (fd_ < 0) return Status::InvalidArgument("PageFile not open");
  PageId id = num_pages_;
  char zeros[kPageSize] = {};
  LODVIZ_RETURN_NOT_OK(WritePage(id, zeros));  // bumps num_pages_ to id + 1
  return id;
}

Status PageFile::ReadPage(PageId id, void* buf) {
  ssize_t n = ::pread(fd_, buf, kPageSize,
                      static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("short read of page " + std::to_string(id));
  }
  ++reads_;
  return Status::OK();
}

Status PageFile::WritePage(PageId id, const void* buf) {
  ssize_t n = ::pwrite(fd_, buf, kPageSize,
                       static_cast<off_t>(id) * static_cast<off_t>(kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IoError("short write of page " + std::to_string(id));
  }
  ++writes_;
  if (id >= num_pages_) num_pages_ = id + 1;
  return Status::OK();
}

}  // namespace lodviz::storage
