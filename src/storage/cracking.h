#ifndef LODVIZ_STORAGE_CRACKING_H_
#define LODVIZ_STORAGE_CRACKING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace lodviz::storage {

/// Database cracking [67]: an adaptive index that physically reorganizes a
/// column as a side effect of the range queries an exploration session
/// issues — exactly the "indexes created incrementally and adaptively
/// throughout exploration" technique the survey highlights (used for data
/// series in [144]).
///
/// Each range query partitions (cracks) only the pieces its bounds fall
/// into, so early queries cost close to a scan while later queries approach
/// index speed — with zero up-front preprocessing.
class CrackerColumn {
 public:
  explicit CrackerColumn(std::vector<double> values);

  /// Values v with lo <= v < hi. Cracks the column at lo and hi.
  std::vector<double> Range(double lo, double hi);

  /// Count of values in [lo, hi); also cracks.
  uint64_t CountRange(double lo, double hi);

  /// Sum of values in [lo, hi); also cracks.
  double SumRange(double lo, double hi);

  size_t size() const { return data_.size(); }
  /// Number of crack boundaries accumulated so far.
  size_t num_cracks() const { return index_.size(); }
  /// Elements moved by partitioning since construction (work accounting).
  uint64_t elements_touched() const { return touched_; }

  /// Direct access for verification.
  const std::vector<double>& data() const { return data_; }

 private:
  /// Ensures a crack at `v`; returns the index of the first element >= v.
  size_t CrackAt(double v);

  std::vector<double> data_;
  // pivot value -> position of first element >= pivot. Elements before the
  // position are < pivot; elements at/after are >= pivot.
  std::map<double, size_t> index_;
  uint64_t touched_ = 0;
};

}  // namespace lodviz::storage

#endif  // LODVIZ_STORAGE_CRACKING_H_
