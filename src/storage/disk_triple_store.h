#ifndef LODVIZ_STORAGE_DISK_TRIPLE_STORE_H_
#define LODVIZ_STORAGE_DISK_TRIPLE_STORE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "rdf/triple.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace lodviz::storage {

/// Disk-resident triple indexes (SPO + POS B+-trees in one page file)
/// behind a bounded buffer pool: the out-of-core backend the survey calls
/// for in Section 4 ("systems should be integrated with disk structures,
/// retrieving data dynamically during runtime"). The dictionary stays in
/// memory (it is orders of magnitude smaller than the triples).
///
/// Memory use is capped at `pool_pages` * 8 KiB regardless of dataset size.
class DiskTripleStore {
 public:
  /// Creates a fresh store at `path` with a `pool_pages`-page buffer pool.
  static Result<std::unique_ptr<DiskTripleStore>> Create(
      const std::string& path, size_t pool_pages);

  /// Inserts one (already dictionary-encoded) triple.
  Status Insert(const rdf::Triple& t);

  /// Bulk-loads sorted-agnostic triples (sorts internally, packs leaves).
  /// Call on an empty store.
  Status BulkLoad(std::vector<rdf::Triple> triples);

  /// Streams triples matching `pattern` (same wildcard semantics as the
  /// in-memory TripleStore). Uses the SPO tree when the subject is bound,
  /// the POS tree when only the predicate/object are, else a full scan.
  Status Scan(const rdf::TriplePattern& pattern,
              const std::function<bool(const rdf::Triple&)>& fn) const;

  uint64_t Count(const rdf::TriplePattern& pattern) const;

  uint64_t size() const { return spo_->size(); }

  BufferPool& pool() { return *pool_; }
  const BufferPool& pool() const { return *pool_; }
  PageFile& file() { return *file_; }

  /// Buffer pool + bookkeeping bytes (excludes the OS page cache).
  size_t MemoryUsage() const { return pool_->MemoryUsage(); }

  /// Passkey for Create(): keeps the constructor effectively private while
  /// letting std::make_unique call it (no naked `new`).
  struct Private {
    explicit Private() = default;
  };
  explicit DiskTripleStore(Private) {}

 private:

  static Key128 SpoKey(const rdf::Triple& t) {
    return {(static_cast<uint64_t>(t.s) << 32) | t.p, t.o};
  }
  static Key128 PosKey(const rdf::Triple& t) {
    return {(static_cast<uint64_t>(t.p) << 32) | t.o, t.s};
  }
  static rdf::Triple FromSpoKey(const Key128& k) {
    return rdf::Triple(static_cast<rdf::TermId>(k.hi >> 32),
                       static_cast<rdf::TermId>(k.hi & 0xFFFFFFFF),
                       static_cast<rdf::TermId>(k.lo));
  }
  static rdf::Triple FromPosKey(const Key128& k) {
    return rdf::Triple(static_cast<rdf::TermId>(k.lo),
                       static_cast<rdf::TermId>(k.hi >> 32),
                       static_cast<rdf::TermId>(k.hi & 0xFFFFFFFF));
  }

  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> spo_;
  std::unique_ptr<BTree> pos_;
};

}  // namespace lodviz::storage

#endif  // LODVIZ_STORAGE_DISK_TRIPLE_STORE_H_
