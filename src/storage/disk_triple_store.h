#ifndef LODVIZ_STORAGE_DISK_TRIPLE_STORE_H_
#define LODVIZ_STORAGE_DISK_TRIPLE_STORE_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "rdf/triple.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace lodviz::storage {

/// Disk-resident triple indexes (SPO + POS B+-trees in one page file)
/// behind a bounded buffer pool: the out-of-core backend the survey calls
/// for in Section 4 ("systems should be integrated with disk structures,
/// retrieving data dynamically during runtime"). The dictionary stays in
/// memory (it is orders of magnitude smaller than the triples).
///
/// Leaves use the delta-compressed format by default (leaf_codec.h);
/// LODVIZ_DISK_LEAF=fixed|compressed or the Create overload overrides it.
/// The same page file also carries two aggregated indexes maintained
/// exactly under both BulkLoad and Insert:
///   sp_agg: (s,p) -> number of distinct objects   (key {(s<<32)|p, 0})
///   p_agg:  p     -> number of triples             (key {p, 0})
/// They make PairCount/PredicateCount exact O(log n) lookups, which is
/// what lets the planner cost BGPs from real cardinalities.
///
/// Memory use is capped at `pool_pages` * 8 KiB regardless of dataset size.
class DiskTripleStore {
 public:
  /// Leaf format for a fresh store: LODVIZ_DISK_LEAF=fixed|compressed,
  /// defaulting to compressed.
  static LeafFormat DefaultLeafFormat();

  /// Creates a fresh store at `path` with a `pool_pages`-page buffer pool
  /// and DefaultLeafFormat() leaves.
  static Result<std::unique_ptr<DiskTripleStore>> Create(
      const std::string& path, size_t pool_pages);

  /// Creates a fresh store with an explicit leaf format.
  static Result<std::unique_ptr<DiskTripleStore>> Create(
      const std::string& path, size_t pool_pages, LeafFormat format);

  /// Inserts one (already dictionary-encoded) triple.
  Status Insert(const rdf::Triple& t);

  /// Bulk-loads sorted-agnostic triples (sorts internally, packs leaves,
  /// builds the aggregated indexes). Call on an empty store.
  Status BulkLoad(std::vector<rdf::Triple> triples);

  /// Streams triples matching `pattern` (same wildcard semantics as the
  /// in-memory TripleStore). Uses the SPO tree when the subject is bound,
  /// the POS tree when only the predicate/object are, else a full scan.
  Status Scan(const rdf::TriplePattern& pattern,
              const std::function<bool(const rdf::Triple&)>& fn) const;

  /// Run-granular Scan: each callback delivers one decoded leaf's worth of
  /// matching triples; the concatenation equals the Scan sequence. Run
  /// pointers are only valid during the callback.
  Status ScanRuns(
      const rdf::TriplePattern& pattern,
      const std::function<bool(const rdf::Triple* run, size_t n)>& fn) const;

  uint64_t Count(const rdf::TriplePattern& pattern) const;

  /// Exact number of triples with subject `s` and predicate `p`, from the
  /// sp_agg aggregated index (O(log n), no scan).
  uint64_t PairCount(rdf::TermId s, rdf::TermId p) const;

  /// Exact number of triples with predicate `p`, from p_agg.
  uint64_t PredicateCount(rdf::TermId p) const;

  uint64_t size() const { return spo_->size(); }
  LeafFormat leaf_format() const { return format_; }

  BufferPool& pool() { return *pool_; }
  const BufferPool& pool() const { return *pool_; }
  PageFile& file() { return *file_; }

  /// Buffer pool + bookkeeping bytes (excludes the OS page cache).
  size_t MemoryUsage() const { return pool_->MemoryUsage(); }

  /// Passkey for Create(): keeps the constructor effectively private while
  /// letting std::make_unique call it (no naked `new`).
  struct Private {
    explicit Private() = default;
  };
  explicit DiskTripleStore(Private) {}

 private:
  // The packing below shifts ids by 32, so index order silently corrupts
  // if TermId ever outgrows 32 bits (the dictionary CHECKs the same bound
  // at Intern time).
  static_assert(sizeof(rdf::TermId) <= 4,
                "Key128 triple packing assumes TermId fits in 32 bits");

  static Key128 SpoKey(const rdf::Triple& t) {
    return {(static_cast<uint64_t>(t.s) << 32) | t.p, t.o};
  }
  static Key128 PosKey(const rdf::Triple& t) {
    return {(static_cast<uint64_t>(t.p) << 32) | t.o, t.s};
  }
  static rdf::Triple FromSpoKey(const Key128& k) {
    return rdf::Triple(static_cast<rdf::TermId>(k.hi >> 32),
                       static_cast<rdf::TermId>(k.hi & 0xFFFFFFFF),
                       static_cast<rdf::TermId>(k.lo));
  }
  static rdf::Triple FromPosKey(const Key128& k) {
    return rdf::Triple(static_cast<rdf::TermId>(k.lo),
                       static_cast<rdf::TermId>(k.hi >> 32),
                       static_cast<rdf::TermId>(k.hi & 0xFFFFFFFF));
  }

  /// Adds `delta` to the aggregate row `key` in `agg` (missing row = 0).
  static Status BumpAggregate(BTree* agg, const Key128& key, uint64_t delta);

  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BTree> spo_;
  std::unique_ptr<BTree> pos_;
  std::unique_ptr<BTree> sp_agg_;
  std::unique_ptr<BTree> p_agg_;
  LeafFormat format_ = LeafFormat::kCompressed;
};

}  // namespace lodviz::storage

#endif  // LODVIZ_STORAGE_DISK_TRIPLE_STORE_H_
