#ifndef LODVIZ_STORAGE_PAGE_FILE_H_
#define LODVIZ_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"

namespace lodviz::storage {

/// Fixed page size used by the whole storage layer.
inline constexpr size_t kPageSize = 8192;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = ~PageId(0);

/// A file laid out as an array of kPageSize pages, accessed with
/// pread/pwrite. Counts physical I/Os so the disk-vs-memory experiments
/// can report them.
///
/// ReadPage/WritePage/Sync are safe to call concurrently (positional I/O,
/// atomic counters) — the striped BufferPool issues them from several
/// shards at once. AllocatePage is a read-modify-write of the page count
/// and serializes itself on grow_mu_, so concurrent allocators from
/// different pool shards are safe too. Open/Close are single-threaded
/// setup/teardown: no I/O may be in flight when they run.
class PageFile {
 public:
  PageFile() = default;
  virtual ~PageFile();

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Creates (truncating) or opens the file at `path`.
  Status Open(const std::string& path, bool truncate);
  Status Close();

  bool is_open() const { return fd_ >= 0; }

  /// Appends a zeroed page; returns its id. Safe to call concurrently
  /// (growth is a read-modify-write of the page count, serialized on
  /// grow_mu_). Virtual so tests can inject I/O failures (see
  /// storage_test.cc).
  virtual Result<PageId> AllocatePage() LODVIZ_EXCLUDES(grow_mu_);

  /// Reads page `id` into `buf` (kPageSize bytes). Loops until the full
  /// page is transferred: POSIX allows pread to return fewer bytes than
  /// requested, and a read landing mid-signal returns EINTR.
  virtual Status ReadPage(PageId id, void* buf);

  /// Writes `buf` (kPageSize bytes) to page `id`, looping on short writes
  /// and EINTR like ReadPage.
  virtual Status WritePage(PageId id, const void* buf);

  /// Flushes file data to stable storage (fdatasync).
  virtual Status Sync();

  uint32_t num_pages() const {
    return num_pages_.load(std::memory_order_relaxed);
  }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  void ResetCounters() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
  }

 protected:
  /// Raw positional I/O seams; tests override these to inject short
  /// transfers and EINTR. Defaults delegate to ::pread / ::pwrite.
  virtual ssize_t PreadSome(void* buf, size_t count, off_t offset);
  virtual ssize_t PwriteSome(const void* buf, size_t count, off_t offset);

 private:
  /// Serializes file growth in AllocatePage. Leaf mutex: no other lock is
  /// ever acquired while it is held (WritePage is lock-free).
  Mutex grow_mu_;
  /// Written only by Open/Close under their single-threaded contract; all
  /// concurrent entry points (Read/Write/Sync/Allocate) only read it.
  // LINT-ALLOW(concurrency.guarded_by): Open/Close are single-threaded
  int fd_ = -1;
  // LINT-ALLOW(concurrency.guarded_by): Open/Close are single-threaded
  std::string path_;
  std::atomic<uint32_t> num_pages_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
};

}  // namespace lodviz::storage

#endif  // LODVIZ_STORAGE_PAGE_FILE_H_
