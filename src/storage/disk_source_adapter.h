#ifndef LODVIZ_STORAGE_DISK_SOURCE_ADAPTER_H_
#define LODVIZ_STORAGE_DISK_SOURCE_ADAPTER_H_

#include <cstdint>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "rdf/dictionary.h"
#include "rdf/triple_source.h"
#include "storage/disk_triple_store.h"

namespace lodviz::storage {

/// Presents a DiskTripleStore as an rdf::TripleSource so the SPARQL engine
/// (and anything else written against the source contract) runs unchanged
/// over disk-resident indexes. The adapter does not own the store or the
/// dictionary; both must outlive it. Pair it with the dictionary that
/// encoded the store's triples — typically the in-memory store's dict when
/// the disk store mirrors it.
///
/// Thread-safety: DiskTripleStore reads go through the lock-striped
/// BufferPool, which supports fully concurrent Fetches, so the adapter
/// forwards Scan/Count calls directly with no serialization of its own.
/// Parallel BGP execution over this source runs genuinely in parallel at
/// the storage layer (scans touching different pool shards do not
/// contend).
///
/// Planner statistics (PredicateCount, PairCount) come straight from the
/// store's aggregated indexes — exact, and no construction-time scan. A
/// small memoization cache in front of the B-tree lookups keeps the
/// planner's repeated probes of the same (s,p)/predicate rows off the
/// buffer pool; it assumes the store is not mutated while the adapter is
/// live (rebuild the adapter after loading more data, as before).
class DiskSourceAdapter : public rdf::TripleSource {
 public:
  DiskSourceAdapter(const DiskTripleStore* store, const rdf::Dictionary* dict);

  /// TripleSource Scan contract (see triple_source.h). Storage-layer errors
  /// cannot surface through the void interface: they are logged, counted on
  /// `storage.adapter.scan_errors`, and the scan ends early (matches seen
  /// before the error were already delivered).
  void Scan(const rdf::TriplePattern& pattern,
            const ScanFn& fn) const override;

  /// Run-granular Scan (TripleSource contract): forwards leaf-decoded runs
  /// from the store's B-trees.
  void ScanRuns(const rdf::TriplePattern& pattern,
                const ScanRunFn& fn) const override;

  [[nodiscard]] uint64_t Count(const rdf::TriplePattern& pattern) const
      override;

  const rdf::Dictionary& dict() const override { return *dict_; }

  [[nodiscard]] uint64_t size() const override { return store_->size(); }

  [[nodiscard]] uint64_t PredicateCount(rdf::TermId p) const override;

  [[nodiscard]] uint64_t PairCount(rdf::TermId s,
                                   rdf::TermId p) const override;

 private:
  /// Cached aggregate lookup keyed (s<<32)|p; predicate rows use s = 0
  /// (0 is the invalid term id, so no (s,p) row collides with them).
  uint64_t CachedStat(uint64_t key, uint64_t (*load)(const DiskTripleStore&,
                                                     uint64_t key)) const;

  const DiskTripleStore* store_;
  const rdf::Dictionary* dict_;

  /// Planner-statistics memoization. Bounded: wiped when it reaches
  /// kStatCacheCap entries (statistics rows are tiny; real workloads probe
  /// far fewer distinct keys than the cap).
  static constexpr size_t kStatCacheCap = 1 << 16;
  mutable Mutex stats_mu_;
  mutable std::unordered_map<uint64_t, uint64_t> stat_cache_
      LODVIZ_GUARDED_BY(stats_mu_);
};

}  // namespace lodviz::storage

#endif  // LODVIZ_STORAGE_DISK_SOURCE_ADAPTER_H_
