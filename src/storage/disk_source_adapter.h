#ifndef LODVIZ_STORAGE_DISK_SOURCE_ADAPTER_H_
#define LODVIZ_STORAGE_DISK_SOURCE_ADAPTER_H_

#include <cstdint>
#include <unordered_map>

#include "rdf/dictionary.h"
#include "rdf/triple_source.h"
#include "storage/disk_triple_store.h"

namespace lodviz::storage {

/// Presents a DiskTripleStore as an rdf::TripleSource so the SPARQL engine
/// (and anything else written against the source contract) runs unchanged
/// over disk-resident indexes. The adapter does not own the store or the
/// dictionary; both must outlive it. Pair it with the dictionary that
/// encoded the store's triples — typically the in-memory store's dict when
/// the disk store mirrors it.
///
/// Thread-safety: DiskTripleStore reads go through the lock-striped
/// BufferPool, which supports fully concurrent Fetches, so the adapter
/// forwards Scan/Count calls directly with no serialization of its own.
/// Parallel BGP execution over this source runs genuinely in parallel at
/// the storage layer (scans touching different pool shards do not
/// contend).
///
/// Predicate statistics (for the planner's shared EstimateSelectivity) are
/// computed once at construction with a full scan; the adapter assumes the
/// underlying store is not mutated afterwards. Rebuild the adapter after a
/// bulk load.
class DiskSourceAdapter : public rdf::TripleSource {
 public:
  DiskSourceAdapter(const DiskTripleStore* store, const rdf::Dictionary* dict);

  /// TripleSource Scan contract (see triple_source.h). Storage-layer errors
  /// cannot surface through the void interface: they are logged, counted on
  /// `storage.adapter.scan_errors`, and the scan ends early (matches seen
  /// before the error were already delivered).
  void Scan(const rdf::TriplePattern& pattern,
            const ScanFn& fn) const override;

  [[nodiscard]] uint64_t Count(const rdf::TriplePattern& pattern) const
      override;

  const rdf::Dictionary& dict() const override { return *dict_; }

  [[nodiscard]] uint64_t size() const override { return store_->size(); }

  [[nodiscard]] uint64_t PredicateCount(rdf::TermId p) const override {
    auto it = pred_counts_.find(p);
    return it == pred_counts_.end() ? 0 : it->second;
  }

 private:
  const DiskTripleStore* store_;
  const rdf::Dictionary* dict_;

  std::unordered_map<rdf::TermId, uint64_t> pred_counts_;
};

}  // namespace lodviz::storage

#endif  // LODVIZ_STORAGE_DISK_SOURCE_ADAPTER_H_
