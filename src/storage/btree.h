#ifndef LODVIZ_STORAGE_BTREE_H_
#define LODVIZ_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/leaf_codec.h"

namespace lodviz::storage {

/// Disk-resident B+-tree with Key128 keys and uint64 values, living
/// entirely in buffer-pool pages. Supports point insert, point lookup,
/// ordered range scans, and sorted bulk load. Set semantics: inserting an
/// existing key overwrites its value.
///
/// Leaves come in two formats (leaf_codec.h): fixed 24-byte entries, or
/// delta-compressed varint-gap runs with an in-page restart directory.
/// The format is chosen per BulkLoad/Create; both support all operations
/// (inserting into a full compressed leaf decodes, re-encodes, and splits
/// it), and iteration order is identical, so callers other than the
/// bulk-loader never see the difference.
class BTree {
 public:
  struct Item {
    Key128 key;
    uint64_t value = 0;
  };

  /// Creates an empty tree, allocating its root in `pool`.
  static Result<BTree> Create(BufferPool* pool,
                              LeafFormat format = LeafFormat::kFixed);

  /// Reattaches to an existing tree rooted at `root`.
  static BTree Attach(BufferPool* pool, PageId root, uint64_t size);

  /// Builds a packed tree from strictly-ascending items (leaves ~100%
  /// full). Non-strictly-ascending input is InvalidArgument.
  static Result<BTree> BulkLoad(BufferPool* pool,
                                const std::vector<Item>& sorted_items,
                                LeafFormat format = LeafFormat::kFixed);

  /// Upserts. When `inserted` is non-null it reports whether the key was
  /// new (false: an existing key's value was overwritten) — what lets the
  /// triple store maintain its aggregated counts exactly under mutation.
  Status Insert(const Key128& key, uint64_t value, bool* inserted = nullptr);

  /// Value for `key`; NotFound if absent.
  [[nodiscard]] Result<uint64_t> Lookup(const Key128& key) const;

  /// Streams items with lo <= key <= hi in key order; return false from
  /// `fn` to stop early.
  Status RangeScan(const Key128& lo, const Key128& hi,
                   const std::function<bool(const Item&)>& fn) const;

  /// Run-granular variant of RangeScan: delivers each leaf's in-range
  /// items as one decoded run (fixed leaves: the page's entry range;
  /// compressed leaves: one decode of the page). The concatenation of the
  /// runs is exactly the RangeScan item sequence; return false to stop.
  /// Run pointers are only valid during the callback.
  Status RangeScanRuns(
      const Key128& lo, const Key128& hi,
      const std::function<bool(const Item* run, size_t n)>& fn) const;

  PageId root() const { return root_; }
  uint64_t size() const { return size_; }
  int height() const { return height_; }

 private:
  BTree(BufferPool* pool, PageId root, uint64_t size, int height)
      : pool_(pool), root_(root), size_(size), height_(height) {}

  struct SplitResult {
    bool split = false;
    Key128 separator;   // first key of the new right sibling's subtree
    PageId right = kInvalidPageId;
    bool inserted = false;  // false when an existing key was overwritten
  };

  Result<SplitResult> InsertRec(PageId page, const Key128& key,
                                uint64_t value);
  Result<SplitResult> InsertCompressedLeaf(PageRef& page, const Key128& key,
                                           uint64_t value);

  BufferPool* pool_;
  PageId root_;
  uint64_t size_ = 0;
  int height_ = 1;
};

}  // namespace lodviz::storage

#endif  // LODVIZ_STORAGE_BTREE_H_
