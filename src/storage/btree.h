#ifndef LODVIZ_STORAGE_BTREE_H_
#define LODVIZ_STORAGE_BTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"

namespace lodviz::storage {

/// 128-bit key ordered lexicographically (hi, lo). Triple permutations are
/// packed into this: e.g. SPO order uses hi = (s << 32) | p, lo = o.
struct Key128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Key128& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator<(const Key128& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }
  bool operator<=(const Key128& other) const { return !(other < *this); }

  static Key128 Min() { return {0, 0}; }
  static Key128 Max() { return {~0ULL, ~0ULL}; }
};

/// Disk-resident B+-tree with fixed-size Key128 keys and uint64 values,
/// living entirely in buffer-pool pages. Supports point insert, point
/// lookup, ordered range scans, and sorted bulk load. Set semantics:
/// inserting an existing key overwrites its value.
class BTree {
 public:
  struct Item {
    Key128 key;
    uint64_t value = 0;
  };

  /// Creates an empty tree, allocating its root in `pool`.
  static Result<BTree> Create(BufferPool* pool);

  /// Reattaches to an existing tree rooted at `root`.
  static BTree Attach(BufferPool* pool, PageId root, uint64_t size);

  /// Builds a packed tree from strictly-ascending items (leaves ~100% full).
  static Result<BTree> BulkLoad(BufferPool* pool,
                                const std::vector<Item>& sorted_items);

  Status Insert(const Key128& key, uint64_t value);

  /// Value for `key`; NotFound if absent.
  [[nodiscard]] Result<uint64_t> Lookup(const Key128& key) const;

  /// Streams items with lo <= key <= hi in key order; return false from
  /// `fn` to stop early.
  Status RangeScan(const Key128& lo, const Key128& hi,
                   const std::function<bool(const Item&)>& fn) const;

  PageId root() const { return root_; }
  uint64_t size() const { return size_; }
  int height() const { return height_; }

 private:
  BTree(BufferPool* pool, PageId root, uint64_t size, int height)
      : pool_(pool), root_(root), size_(size), height_(height) {}

  struct SplitResult {
    bool split = false;
    Key128 separator;   // first key of the new right sibling's subtree
    PageId right = kInvalidPageId;
    bool inserted = false;  // false when an existing key was overwritten
  };

  Result<SplitResult> InsertRec(PageId page, const Key128& key,
                                uint64_t value);

  BufferPool* pool_;
  PageId root_;
  uint64_t size_ = 0;
  int height_ = 1;
};

}  // namespace lodviz::storage

#endif  // LODVIZ_STORAGE_BTREE_H_
