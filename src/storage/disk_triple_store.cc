#include "storage/disk_triple_store.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lodviz::storage {

namespace {

struct DiskStoreMetrics {
  obs::Counter& inserts;
  obs::Counter& scans;
  obs::Counter& rows_scanned;

  static const DiskStoreMetrics& Get() {
    static DiskStoreMetrics m{
        obs::MetricRegistry::Global().GetCounter("storage.disk_store.inserts"),
        obs::MetricRegistry::Global().GetCounter("storage.disk_store.scans"),
        obs::MetricRegistry::Global().GetCounter(
            "storage.disk_store.rows_scanned")};
    return m;
  }
};

/// Sorts, dedups, and returns the BTree items for one triple permutation.
std::vector<BTree::Item> SortedKeys(const std::vector<rdf::Triple>& triples,
                                    Key128 (*key_fn)(const rdf::Triple&)) {
  std::vector<BTree::Item> items(triples.size());
  for (size_t i = 0; i < triples.size(); ++i) items[i].key = key_fn(triples[i]);
  std::sort(items.begin(), items.end(),
            [](const BTree::Item& a, const BTree::Item& b) {
              return a.key < b.key;
            });
  items.erase(std::unique(items.begin(), items.end(),
                          [](const BTree::Item& a, const BTree::Item& b) {
                            return a.key == b.key;
                          }),
              items.end());
  return items;
}

/// Counts runs of equal `group(key)` over sorted items — the aggregated
/// index rows. The input is ascending, so the output is strictly
/// ascending and bulk-loadable directly.
std::vector<BTree::Item> GroupCounts(const std::vector<BTree::Item>& sorted,
                                     uint64_t (*group)(const Key128&)) {
  std::vector<BTree::Item> out;
  size_t i = 0;
  while (i < sorted.size()) {
    const uint64_t g = group(sorted[i].key);
    size_t j = i;
    while (j < sorted.size() && group(sorted[j].key) == g) ++j;
    out.push_back({Key128{g, 0}, j - i});
    i = j;
  }
  return out;
}

}  // namespace

LeafFormat DiskTripleStore::DefaultLeafFormat() {
  const char* env = std::getenv("LODVIZ_DISK_LEAF");
  if (env != nullptr && std::strcmp(env, "fixed") == 0) {
    return LeafFormat::kFixed;
  }
  return LeafFormat::kCompressed;
}

Result<std::unique_ptr<DiskTripleStore>> DiskTripleStore::Create(
    const std::string& path, size_t pool_pages) {
  return Create(path, pool_pages, DefaultLeafFormat());
}

Result<std::unique_ptr<DiskTripleStore>> DiskTripleStore::Create(
    const std::string& path, size_t pool_pages, LeafFormat format) {
  auto store = std::make_unique<DiskTripleStore>(Private{});
  store->format_ = format;
  store->file_ = std::make_unique<PageFile>();
  LODVIZ_RETURN_NOT_OK(store->file_->Open(path, /*truncate=*/true));
  store->pool_ = std::make_unique<BufferPool>(store->file_.get(), pool_pages);
  LODVIZ_ASSIGN_OR_RETURN(BTree spo, BTree::Create(store->pool_.get(), format));
  LODVIZ_ASSIGN_OR_RETURN(BTree pos, BTree::Create(store->pool_.get(), format));
  LODVIZ_ASSIGN_OR_RETURN(BTree sp_agg,
                          BTree::Create(store->pool_.get(), format));
  LODVIZ_ASSIGN_OR_RETURN(BTree p_agg,
                          BTree::Create(store->pool_.get(), format));
  store->spo_ = std::make_unique<BTree>(std::move(spo));
  store->pos_ = std::make_unique<BTree>(std::move(pos));
  store->sp_agg_ = std::make_unique<BTree>(std::move(sp_agg));
  store->p_agg_ = std::make_unique<BTree>(std::move(p_agg));
  return store;
}

Status DiskTripleStore::BumpAggregate(BTree* agg, const Key128& key,
                                      uint64_t delta) {
  uint64_t current = 0;
  Result<uint64_t> r = agg->Lookup(key);
  if (r.ok()) {
    current = *r;
  } else if (r.status().code() != StatusCode::kNotFound) {
    return r.status();
  }
  return agg->Insert(key, current + delta);
}

Status DiskTripleStore::Insert(const rdf::Triple& t) {
  DiskStoreMetrics::Get().inserts.Increment();
  bool inserted = false;
  LODVIZ_RETURN_NOT_OK(spo_->Insert(SpoKey(t), 0, &inserted));
  LODVIZ_RETURN_NOT_OK(pos_->Insert(PosKey(t), 0));
  if (inserted) {
    // New triple: the aggregated counts move with it.
    LODVIZ_RETURN_NOT_OK(BumpAggregate(
        sp_agg_.get(), Key128{(static_cast<uint64_t>(t.s) << 32) | t.p, 0}, 1));
    LODVIZ_RETURN_NOT_OK(BumpAggregate(p_agg_.get(), Key128{t.p, 0}, 1));
  }
  return Status::OK();
}

Status DiskTripleStore::BulkLoad(std::vector<rdf::Triple> triples) {
  LODVIZ_TRACE_SPAN("storage.disk_store.bulk_load");
  {
    std::vector<BTree::Item> items = SortedKeys(triples, &SpoKey);
    // SPO keys group by hi = (s<<32)|p — exactly the sp_agg rows.
    std::vector<BTree::Item> sp_rows =
        GroupCounts(items, [](const Key128& k) { return k.hi; });
    LODVIZ_ASSIGN_OR_RETURN(BTree spo,
                            BTree::BulkLoad(pool_.get(), items, format_));
    *spo_ = std::move(spo);
    LODVIZ_ASSIGN_OR_RETURN(BTree sp_agg,
                            BTree::BulkLoad(pool_.get(), sp_rows, format_));
    *sp_agg_ = std::move(sp_agg);
  }
  {
    std::vector<BTree::Item> items = SortedKeys(triples, &PosKey);
    // POS keys group by p = hi>>32 — the p_agg rows.
    std::vector<BTree::Item> p_rows =
        GroupCounts(items, [](const Key128& k) { return k.hi >> 32; });
    LODVIZ_ASSIGN_OR_RETURN(BTree pos,
                            BTree::BulkLoad(pool_.get(), items, format_));
    *pos_ = std::move(pos);
    LODVIZ_ASSIGN_OR_RETURN(BTree p_agg,
                            BTree::BulkLoad(pool_.get(), p_rows, format_));
    *p_agg_ = std::move(p_agg);
  }
  return Status::OK();
}

Status DiskTripleStore::Scan(
    const rdf::TriplePattern& pattern,
    const std::function<bool(const rdf::Triple&)>& fn) const {
  return ScanRuns(pattern, [&](const rdf::Triple* run, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (!fn(run[i])) return false;
    }
    return true;
  });
}

Status DiskTripleStore::ScanRuns(
    const rdf::TriplePattern& pattern,
    const std::function<bool(const rdf::Triple* run, size_t n)>& fn) const {
  using rdf::kInvalidTermId;
  LODVIZ_TRACE_SPAN("storage.disk_store.scan");
  const DiskStoreMetrics& metrics = DiskStoreMetrics::Get();
  metrics.scans.Increment();
  // Rows are tallied locally and folded in once per scan so the per-row
  // path stays free of shared-cache-line traffic.
  uint64_t rows = 0;
  struct RowFold {
    const DiskStoreMetrics& metrics;
    const uint64_t& rows;
    ~RowFold() { metrics.rows_scanned.Increment(rows); }
  } fold{metrics, rows};

  // One leaf run of Key128 items decodes into `scratch` as triples (with
  // the pattern's residual filter applied) and is delivered as one run —
  // the executor extends whole runs into its column batches.
  std::vector<rdf::Triple> scratch;
  auto deliver = [&](const BTree::Item* run, size_t n,
                     rdf::Triple (*from_key)(const Key128&)) {
    scratch.clear();
    for (size_t i = 0; i < n; ++i) {
      ++rows;
      rdf::Triple t = from_key(run[i].key);
      if (pattern.Matches(t)) scratch.push_back(t);
    }
    return scratch.empty() || fn(scratch.data(), scratch.size());
  };

  if (pattern.s != kInvalidTermId) {
    // SPO range on (s) or (s, p).
    uint64_t hi_lo = static_cast<uint64_t>(pattern.s) << 32;
    Key128 lo{hi_lo | (pattern.p != kInvalidTermId ? pattern.p : 0), 0};
    Key128 hi{hi_lo | (pattern.p != kInvalidTermId ? pattern.p : 0xFFFFFFFFULL),
              ~0ULL};
    return spo_->RangeScanRuns(lo, hi, [&](const BTree::Item* run, size_t n) {
      return deliver(run, n, &FromSpoKey);
    });
  }
  if (pattern.p != kInvalidTermId) {
    // POS range on (p) or (p, o).
    uint64_t hi_lo = static_cast<uint64_t>(pattern.p) << 32;
    Key128 lo{hi_lo | (pattern.o != kInvalidTermId ? pattern.o : 0), 0};
    Key128 hi{hi_lo | (pattern.o != kInvalidTermId ? pattern.o : 0xFFFFFFFFULL),
              ~0ULL};
    return pos_->RangeScanRuns(lo, hi, [&](const BTree::Item* run, size_t n) {
      return deliver(run, n, &FromPosKey);
    });
  }
  // Full scan (also covers object-only patterns; no OSP tree on disk).
  return spo_->RangeScanRuns(Key128::Min(), Key128::Max(),
                             [&](const BTree::Item* run, size_t n) {
                               return deliver(run, n, &FromSpoKey);
                             });
}

uint64_t DiskTripleStore::Count(const rdf::TriplePattern& pattern) const {
  using rdf::kInvalidTermId;
  // Aggregate fast paths: these shapes answer from sp_agg / p_agg without
  // touching the triple trees.
  if (pattern.o == kInvalidTermId) {
    if (pattern.s == kInvalidTermId && pattern.p == kInvalidTermId) {
      return size();
    }
    if (pattern.s != kInvalidTermId && pattern.p != kInvalidTermId) {
      return PairCount(pattern.s, pattern.p);
    }
    if (pattern.s == kInvalidTermId && pattern.p != kInvalidTermId) {
      return PredicateCount(pattern.p);
    }
  }
  uint64_t n = 0;
  Status s = Scan(pattern, [&](const rdf::Triple&) {
    ++n;
    return true;
  });
  (void)s;
  return n;
}

uint64_t DiskTripleStore::PairCount(rdf::TermId s, rdf::TermId p) const {
  Result<uint64_t> r =
      sp_agg_->Lookup(Key128{(static_cast<uint64_t>(s) << 32) | p, 0});
  return r.ok() ? *r : 0;
}

uint64_t DiskTripleStore::PredicateCount(rdf::TermId p) const {
  Result<uint64_t> r = p_agg_->Lookup(Key128{p, 0});
  return r.ok() ? *r : 0;
}

}  // namespace lodviz::storage
