#include "storage/disk_triple_store.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lodviz::storage {

namespace {

struct DiskStoreMetrics {
  obs::Counter& inserts;
  obs::Counter& scans;
  obs::Counter& rows_scanned;

  static const DiskStoreMetrics& Get() {
    static DiskStoreMetrics m{
        obs::MetricRegistry::Global().GetCounter("storage.disk_store.inserts"),
        obs::MetricRegistry::Global().GetCounter("storage.disk_store.scans"),
        obs::MetricRegistry::Global().GetCounter(
            "storage.disk_store.rows_scanned")};
    return m;
  }
};

}  // namespace

Result<std::unique_ptr<DiskTripleStore>> DiskTripleStore::Create(
    const std::string& path, size_t pool_pages) {
  auto store = std::make_unique<DiskTripleStore>(Private{});
  store->file_ = std::make_unique<PageFile>();
  LODVIZ_RETURN_NOT_OK(store->file_->Open(path, /*truncate=*/true));
  store->pool_ = std::make_unique<BufferPool>(store->file_.get(), pool_pages);
  LODVIZ_ASSIGN_OR_RETURN(BTree spo, BTree::Create(store->pool_.get()));
  LODVIZ_ASSIGN_OR_RETURN(BTree pos, BTree::Create(store->pool_.get()));
  store->spo_ = std::make_unique<BTree>(std::move(spo));
  store->pos_ = std::make_unique<BTree>(std::move(pos));
  return store;
}

Status DiskTripleStore::Insert(const rdf::Triple& t) {
  DiskStoreMetrics::Get().inserts.Increment();
  LODVIZ_RETURN_NOT_OK(spo_->Insert(SpoKey(t), 0));
  return pos_->Insert(PosKey(t), 0);
}

Status DiskTripleStore::BulkLoad(std::vector<rdf::Triple> triples) {
  LODVIZ_TRACE_SPAN("storage.disk_store.bulk_load");
  std::vector<BTree::Item> items(triples.size());
  for (size_t i = 0; i < triples.size(); ++i) items[i].key = SpoKey(triples[i]);
  std::sort(items.begin(), items.end(),
            [](const BTree::Item& a, const BTree::Item& b) {
              return a.key < b.key;
            });
  items.erase(std::unique(items.begin(), items.end(),
                          [](const BTree::Item& a, const BTree::Item& b) {
                            return a.key == b.key;
                          }),
              items.end());
  LODVIZ_ASSIGN_OR_RETURN(BTree spo, BTree::BulkLoad(pool_.get(), items));
  *spo_ = std::move(spo);

  items.clear();
  items.resize(triples.size());
  for (size_t i = 0; i < triples.size(); ++i) items[i].key = PosKey(triples[i]);
  std::sort(items.begin(), items.end(),
            [](const BTree::Item& a, const BTree::Item& b) {
              return a.key < b.key;
            });
  items.erase(std::unique(items.begin(), items.end(),
                          [](const BTree::Item& a, const BTree::Item& b) {
                            return a.key == b.key;
                          }),
              items.end());
  LODVIZ_ASSIGN_OR_RETURN(BTree pos, BTree::BulkLoad(pool_.get(), items));
  *pos_ = std::move(pos);
  return Status::OK();
}

Status DiskTripleStore::Scan(
    const rdf::TriplePattern& pattern,
    const std::function<bool(const rdf::Triple&)>& fn) const {
  using rdf::kInvalidTermId;
  LODVIZ_TRACE_SPAN("storage.disk_store.scan");
  const DiskStoreMetrics& metrics = DiskStoreMetrics::Get();
  metrics.scans.Increment();
  // Rows are tallied locally and folded in once per scan so the per-row
  // path stays free of shared-cache-line traffic.
  uint64_t rows = 0;
  auto emit = [&](const rdf::Triple& t) {
    ++rows;
    return !pattern.Matches(t) || fn(t);
  };
  struct RowFold {
    const DiskStoreMetrics& metrics;
    const uint64_t& rows;
    ~RowFold() { metrics.rows_scanned.Increment(rows); }
  } fold{metrics, rows};

  if (pattern.s != kInvalidTermId) {
    // SPO range on (s) or (s, p).
    uint64_t hi_lo = static_cast<uint64_t>(pattern.s) << 32;
    Key128 lo{hi_lo | (pattern.p != kInvalidTermId ? pattern.p : 0), 0};
    Key128 hi{hi_lo | (pattern.p != kInvalidTermId ? pattern.p : 0xFFFFFFFFULL),
              ~0ULL};
    return spo_->RangeScan(lo, hi, [&](const BTree::Item& item) {
      return emit(FromSpoKey(item.key));
    });
  }
  if (pattern.p != kInvalidTermId) {
    // POS range on (p) or (p, o).
    uint64_t hi_lo = static_cast<uint64_t>(pattern.p) << 32;
    Key128 lo{hi_lo | (pattern.o != kInvalidTermId ? pattern.o : 0), 0};
    Key128 hi{hi_lo | (pattern.o != kInvalidTermId ? pattern.o : 0xFFFFFFFFULL),
              ~0ULL};
    return pos_->RangeScan(lo, hi, [&](const BTree::Item& item) {
      return emit(FromPosKey(item.key));
    });
  }
  // Full scan (also covers object-only patterns; no OSP tree on disk).
  return spo_->RangeScan(Key128::Min(), Key128::Max(),
                         [&](const BTree::Item& item) {
                           return emit(FromSpoKey(item.key));
                         });
}

uint64_t DiskTripleStore::Count(const rdf::TriplePattern& pattern) const {
  uint64_t n = 0;
  Status s = Scan(pattern, [&](const rdf::Triple&) {
    ++n;
    return true;
  });
  (void)s;
  return n;
}

}  // namespace lodviz::storage
