#include "storage/cracking.h"

#include <algorithm>

namespace lodviz::storage {

CrackerColumn::CrackerColumn(std::vector<double> values)
    : data_(std::move(values)) {}

size_t CrackerColumn::CrackAt(double v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;

  // Locate the piece [piece_lo, piece_hi) that v falls into.
  size_t piece_lo = 0;
  size_t piece_hi = data_.size();
  auto ub = index_.upper_bound(v);
  if (ub != index_.end()) piece_hi = ub->second;
  if (ub != index_.begin()) {
    auto prev = std::prev(ub);
    piece_lo = prev->second;
  }

  // Partition the piece: < v to the left, >= v to the right.
  auto mid = std::partition(data_.begin() + piece_lo, data_.begin() + piece_hi,
                            [v](double x) { return x < v; });
  touched_ += piece_hi - piece_lo;
  size_t pos = static_cast<size_t>(mid - data_.begin());
  index_[v] = pos;
  return pos;
}

std::vector<double> CrackerColumn::Range(double lo, double hi) {
  size_t b = CrackAt(lo);
  size_t e = CrackAt(hi);
  return std::vector<double>(data_.begin() + b, data_.begin() + e);
}

uint64_t CrackerColumn::CountRange(double lo, double hi) {
  size_t b = CrackAt(lo);
  size_t e = CrackAt(hi);
  return e >= b ? e - b : 0;
}

double CrackerColumn::SumRange(double lo, double hi) {
  size_t b = CrackAt(lo);
  size_t e = CrackAt(hi);
  double sum = 0.0;
  for (size_t i = b; i < e; ++i) sum += data_[i];
  return sum;
}

}  // namespace lodviz::storage
