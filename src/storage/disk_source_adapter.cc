#include "storage/disk_source_adapter.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace lodviz::storage {

namespace {

obs::Counter& ScanErrors() {
  static obs::Counter& c =
      obs::MetricRegistry::Global().GetCounter("storage.adapter.scan_errors");
  return c;
}

}  // namespace

DiskSourceAdapter::DiskSourceAdapter(const DiskTripleStore* store,
                                     const rdf::Dictionary* dict)
    : store_(store), dict_(dict) {
  // One full pass to build the predicate statistics the planner's shared
  // EstimateSelectivity needs; with identical data this makes the disk
  // backend plan exactly like the in-memory one.
  Status s = store_->Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    ++pred_counts_[t.p];
    return true;
  });
  if (!s.ok()) {
    ScanErrors().Increment();
    LODVIZ_LOG_WARN() << "DiskSourceAdapter statistics scan failed: "
                      << s.ToString();
  }
}

void DiskSourceAdapter::Scan(const rdf::TriplePattern& pattern,
                             const ScanFn& fn) const {
  Status s = store_->Scan(pattern, fn);
  if (!s.ok()) {
    ScanErrors().Increment();
    LODVIZ_LOG_WARN() << "DiskSourceAdapter scan failed: " << s.ToString();
  }
}

uint64_t DiskSourceAdapter::Count(const rdf::TriplePattern& pattern) const {
  return store_->Count(pattern);
}

}  // namespace lodviz::storage
