#include "storage/disk_source_adapter.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace lodviz::storage {

namespace {

obs::Counter& ScanErrors() {
  static obs::Counter& c =
      obs::MetricRegistry::Global().GetCounter("storage.adapter.scan_errors");
  return c;
}

}  // namespace

DiskSourceAdapter::DiskSourceAdapter(const DiskTripleStore* store,
                                     const rdf::Dictionary* dict)
    : store_(store), dict_(dict) {}

void DiskSourceAdapter::Scan(const rdf::TriplePattern& pattern,
                             const ScanFn& fn) const {
  Status s = store_->Scan(pattern, fn);
  if (!s.ok()) {
    ScanErrors().Increment();
    LODVIZ_LOG_WARN() << "DiskSourceAdapter scan failed: " << s.ToString();
  }
}

void DiskSourceAdapter::ScanRuns(const rdf::TriplePattern& pattern,
                                 const ScanRunFn& fn) const {
  Status s = store_->ScanRuns(pattern, fn);
  if (!s.ok()) {
    ScanErrors().Increment();
    LODVIZ_LOG_WARN() << "DiskSourceAdapter scan failed: " << s.ToString();
  }
}

uint64_t DiskSourceAdapter::Count(const rdf::TriplePattern& pattern) const {
  return store_->Count(pattern);
}

uint64_t DiskSourceAdapter::CachedStat(
    uint64_t key, uint64_t (*load)(const DiskTripleStore&, uint64_t)) const {
  {
    MutexLock lock(&stats_mu_);
    auto it = stat_cache_.find(key);
    if (it != stat_cache_.end()) return it->second;
  }
  // The aggregate lookup runs outside the cache lock so concurrent misses
  // do not serialize on the buffer pool behind it.
  const uint64_t value = load(*store_, key);
  MutexLock lock(&stats_mu_);
  if (stat_cache_.size() >= kStatCacheCap) stat_cache_.clear();
  stat_cache_.emplace(key, value);
  return value;
}

uint64_t DiskSourceAdapter::PredicateCount(rdf::TermId p) const {
  return CachedStat(p, [](const DiskTripleStore& store, uint64_t key) {
    return store.PredicateCount(static_cast<rdf::TermId>(key));
  });
}

uint64_t DiskSourceAdapter::PairCount(rdf::TermId s, rdf::TermId p) const {
  const uint64_t key = (static_cast<uint64_t>(s) << 32) | p;
  return CachedStat(key, [](const DiskTripleStore& store, uint64_t k) {
    return store.PairCount(static_cast<rdf::TermId>(k >> 32),
                           static_cast<rdf::TermId>(k & 0xFFFFFFFF));
  });
}

}  // namespace lodviz::storage
