#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"

namespace lodviz::storage {

PageRef::PageRef(BufferPool* pool, int32_t frame) : pool_(pool), frame_(frame) {}

PageRef::~PageRef() { Release(); }

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = -1;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = -1;
  }
  return *this;
}

// While a PageRef is alive the frame is pinned, so page_id and data are
// stable and safe to read without the shard mutex.
uint8_t* PageRef::data() { return pool_->frames_[frame_].data.get(); }
const uint8_t* PageRef::data() const {
  return pool_->frames_[frame_].data.get();
}
PageId PageRef::page_id() const { return pool_->frames_[frame_].page_id; }
void PageRef::MarkDirty() {
  pool_->frames_[frame_].dirty.store(true, std::memory_order_release);
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
  }
}

size_t BufferPool::PickShards(size_t capacity) {
  size_t shards = 1;
  while (shards < 8 && capacity / (shards * 2) >= 8) shards *= 2;
  return shards;
}

size_t BufferPool::ValidatedCapacity(size_t capacity_pages) {
  LODVIZ_CHECK(capacity_pages >= 4) << "buffer pool too small";
  return capacity_pages;
}

BufferPool::BufferPool(PageFile* file, size_t capacity_pages)
    : file_(file),
      capacity_(ValidatedCapacity(capacity_pages)),
      num_shards_(PickShards(capacity_pages)),
      frames_(std::make_unique<Frame[]>(capacity_)),
      shards_(std::make_unique<Shard[]>(num_shards_)),
      agg_hits_(&obs::MetricRegistry::Global().GetCounter(
          "storage.buffer_pool.hits")),
      agg_misses_(&obs::MetricRegistry::Global().GetCounter(
          "storage.buffer_pool.misses")),
      agg_evictions_(&obs::MetricRegistry::Global().GetCounter(
          "storage.buffer_pool.evictions")) {
  for (size_t i = 0; i < capacity_; ++i) {
    frames_[i].data = std::make_unique<uint8_t[]>(kPageSize);
  }
  // Split the frame array into contiguous per-shard ranges; the last
  // shard absorbs the remainder.
  const size_t per_shard = capacity_ / num_shards_;
  for (size_t s = 0; s < num_shards_; ++s) {
    shards_[s].begin = static_cast<int32_t>(s * per_shard);
    shards_[s].end = static_cast<int32_t>(
        s + 1 == num_shards_ ? capacity_ : (s + 1) * per_shard);
  }
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  registry.GetCounter("storage.buffer_pool.pools_created").Increment();
  registry.GetGauge("storage.buffer_pool.capacity_pages")
      .Set(static_cast<int64_t>(capacity_pages));
}

BufferPool::~BufferPool() { FlushAggregates(); }

void BufferPool::FlushAggregates() {
  agg_hits_->Increment(hits_.value() & (kAggBatch - 1));
}

Result<int32_t> BufferPool::GetVictimFrame(Shard& shard) {
  int32_t victim = -1;
  uint64_t best_tick = ~0ULL;
  for (int32_t i = shard.begin; i < shard.end; ++i) {
    const Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId) return i;
    // Acquire pairs with the release decrement in Unpin: observing zero
    // means the last pinner's writes (page bytes, dirty flag) are visible.
    if (f.pin_count.load(std::memory_order_acquire) == 0 &&
        f.lru_tick < best_tick) {
      best_tick = f.lru_tick;
      victim = i;
    }
  }
  if (victim < 0) {
    return Status::ResourceExhausted("all frames of the page's shard are pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty.load(std::memory_order_acquire)) {
    LODVIZ_RETURN_NOT_OK(file_->WritePage(f.page_id, f.data.get()));
    f.dirty.store(false, std::memory_order_relaxed);
  }
  shard.page_table.erase(f.page_id);
  f.page_id = kInvalidPageId;
  evictions_.Increment();
  agg_evictions_->Increment();
  return victim;
}

void BufferPool::InstallFrame(Shard& shard, int32_t frame, PageId id,
                              bool dirty) {
  Frame& f = frames_[frame];
  f.page_id = id;
  f.pin_count.store(1, std::memory_order_relaxed);
  f.dirty.store(dirty, std::memory_order_relaxed);
  f.lru_tick = ++shard.tick;
  shard.page_table[id] = frame;
}

Result<PageRef> BufferPool::Fetch(PageId id) {
  Shard& shard = ShardOf(id);
  MutexLock lock(&shard.mu);
  auto it = shard.page_table.find(id);
  if (it != shard.page_table.end()) {
    if ((hits_.IncrementAndGet() & (kAggBatch - 1)) == 0) {
      agg_hits_->Increment(kAggBatch);
    }
    Frame& f = frames_[it->second];
    f.pin_count.fetch_add(1, std::memory_order_relaxed);
    f.lru_tick = ++shard.tick;
    return PageRef(this, it->second);
  }
  misses_.Increment();
  agg_misses_->Increment();
  LODVIZ_ASSIGN_OR_RETURN(int32_t frame, GetVictimFrame(shard));
  LODVIZ_RETURN_NOT_OK(file_->ReadPage(id, frames_[frame].data.get()));
  InstallFrame(shard, frame, id, /*dirty=*/false);
  return PageRef(this, frame);
}

Result<PageRef> BufferPool::NewPage() {
  // File growth is serialized inside PageFile::AllocatePage (its grow
  // mutex); everything else stays shard-local.
  LODVIZ_ASSIGN_OR_RETURN(PageId id, file_->AllocatePage());
  Shard& shard = ShardOf(id);
  MutexLock lock(&shard.mu);
  LODVIZ_ASSIGN_OR_RETURN(int32_t frame, GetVictimFrame(shard));
  std::memset(frames_[frame].data.get(), 0, kPageSize);
  InstallFrame(shard, frame, id, /*dirty=*/true);
  return PageRef(this, frame);
}

Status BufferPool::FlushAll() {
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    MutexLock lock(&shard.mu);
    for (int32_t i = shard.begin; i < shard.end; ++i) {
      Frame& f = frames_[i];
      if (f.page_id != kInvalidPageId &&
          f.dirty.load(std::memory_order_acquire)) {
        LODVIZ_RETURN_NOT_OK(file_->WritePage(f.page_id, f.data.get()));
        f.dirty.store(false, std::memory_order_relaxed);
      }
    }
  }
  // Flushed pages are only in the kernel page cache until synced; a crash
  // after FlushAll must not lose them.
  return file_->Sync();
}

void BufferPool::Unpin(int32_t frame) {
  Frame& f = frames_[frame];
  uint32_t prev = f.pin_count.fetch_sub(1, std::memory_order_release);
  LODVIZ_CHECK(prev > 0) << "unpin of unpinned frame";
}

}  // namespace lodviz::storage
