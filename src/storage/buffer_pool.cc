#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"

namespace lodviz::storage {

PageRef::PageRef(BufferPool* pool, int32_t frame) : pool_(pool), frame_(frame) {}

PageRef::~PageRef() { Release(); }

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = -1;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = -1;
  }
  return *this;
}

uint8_t* PageRef::data() { return pool_->frames_[frame_].data.get(); }
const uint8_t* PageRef::data() const {
  return pool_->frames_[frame_].data.get();
}
PageId PageRef::page_id() const { return pool_->frames_[frame_].page_id; }
void PageRef::MarkDirty() { pool_->frames_[frame_].dirty = true; }

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
  }
}

BufferPool::BufferPool(PageFile* file, size_t capacity_pages) : file_(file) {
  LODVIZ_CHECK(capacity_pages >= 4) << "buffer pool too small";
  frames_.resize(capacity_pages);
  for (Frame& f : frames_) f.data = std::make_unique<uint8_t[]>(kPageSize);
  obs::MetricRegistry& registry = obs::MetricRegistry::Global();
  agg_hits_ = &registry.GetCounter("storage.buffer_pool.hits");
  agg_misses_ = &registry.GetCounter("storage.buffer_pool.misses");
  agg_evictions_ = &registry.GetCounter("storage.buffer_pool.evictions");
  registry.GetCounter("storage.buffer_pool.pools_created").Increment();
  registry.GetGauge("storage.buffer_pool.capacity_pages")
      .Set(static_cast<int64_t>(capacity_pages));
}

BufferPool::~BufferPool() { FlushAggregates(); }

void BufferPool::FlushAggregates() {
  agg_hits_->Increment(hits_.value() & (kAggBatch - 1));
}

Result<int32_t> BufferPool::GetVictimFrame() {
  int32_t victim = -1;
  uint64_t best_tick = ~0ULL;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId) return static_cast<int32_t>(i);
    if (f.pin_count == 0 && f.lru_tick < best_tick) {
      best_tick = f.lru_tick;
      victim = static_cast<int32_t>(i);
    }
  }
  if (victim < 0) {
    return Status::ResourceExhausted("all buffer pool frames are pinned");
  }
  Frame& f = frames_[victim];
  if (f.dirty) {
    LODVIZ_RETURN_NOT_OK(file_->WritePage(f.page_id, f.data.get()));
    f.dirty = false;
  }
  page_table_.erase(f.page_id);
  f.page_id = kInvalidPageId;
  evictions_.Increment();
  agg_evictions_->Increment();
  return victim;
}

Result<PageRef> BufferPool::Fetch(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    if ((hits_.IncrementAndGet() & (kAggBatch - 1)) == 0) {
      agg_hits_->Increment(kAggBatch);
    }
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.lru_tick = ++tick_;
    return PageRef(this, it->second);
  }
  misses_.Increment();
  agg_misses_->Increment();
  LODVIZ_ASSIGN_OR_RETURN(int32_t frame, GetVictimFrame());
  Frame& f = frames_[frame];
  LODVIZ_RETURN_NOT_OK(file_->ReadPage(id, f.data.get()));
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.lru_tick = ++tick_;
  page_table_[id] = frame;
  return PageRef(this, frame);
}

Result<PageRef> BufferPool::NewPage() {
  LODVIZ_ASSIGN_OR_RETURN(PageId id, file_->AllocatePage());
  LODVIZ_ASSIGN_OR_RETURN(int32_t frame, GetVictimFrame());
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, kPageSize);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.lru_tick = ++tick_;
  page_table_[id] = frame;
  return PageRef(this, frame);
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      LODVIZ_RETURN_NOT_OK(file_->WritePage(f.page_id, f.data.get()));
      f.dirty = false;
    }
  }
  // Flushed pages are only in the kernel page cache until synced; a crash
  // after FlushAll must not lose them.
  return file_->Sync();
}

void BufferPool::Unpin(int32_t frame) {
  Frame& f = frames_[frame];
  LODVIZ_CHECK(f.pin_count > 0) << "unpin of unpinned frame";
  --f.pin_count;
}

}  // namespace lodviz::storage
