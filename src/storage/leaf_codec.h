#ifndef LODVIZ_STORAGE_LEAF_CODEC_H_
#define LODVIZ_STORAGE_LEAF_CODEC_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "storage/page_file.h"

namespace lodviz::storage {

/// 128-bit key ordered lexicographically (hi, lo). Triple permutations are
/// packed into this: e.g. SPO order uses hi = (s << 32) | p, lo = o.
struct Key128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Key128& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator<(const Key128& other) const {
    return hi != other.hi ? hi < other.hi : lo < other.lo;
  }
  bool operator<=(const Key128& other) const { return !(other < *this); }

  static Key128 Min() { return {0, 0}; }
  static Key128 Max() { return {~0ULL, ~0ULL}; }
};

/// On-page layout of a B+-tree leaf. Fixed leaves store 24-byte
/// Key128+value entries; compressed leaves delta-encode sorted runs
/// (RDF-3X/trident-style varint gap coding) so a page holds 4-10x more
/// triples — fewer pages per scan and an effectively larger buffer pool.
/// The numeric values double as the PageHeader::is_leaf discriminator
/// (0 = internal node).
enum class LeafFormat : uint8_t {
  kFixed = 1,
  kCompressed = 2,
};

/// Restart interval of the compressed leaf format: every 16th entry's full
/// key lands in the page's restart directory, so in-page search is a
/// binary search over restarts plus a bounded decode of one block.
inline constexpr size_t kLeafRestartInterval = 16;

// ---- unsigned LEB128 varints ----

/// Bytes PutVarint64 writes for `v` (1..10).
inline size_t VarintLength(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Appends `v` LEB128-encoded; returns the advanced write pointer.
inline uint8_t* PutVarint64(uint8_t* dst, uint64_t v) {
  while (v >= 0x80) {
    *dst++ = static_cast<uint8_t>(v) | 0x80;
    v >>= 7;
  }
  *dst++ = static_cast<uint8_t>(v);
  return dst;
}

/// Decodes one varint from [p, limit); returns the advanced read pointer,
/// or nullptr on truncated/oversized input.
inline const uint8_t* GetVarint64(const uint8_t* p, const uint8_t* limit,
                                  uint64_t* v) {
  uint64_t result = 0;
  for (unsigned shift = 0; shift < 64 && p < limit; shift += 7) {
    const uint8_t byte = *p++;
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
  }
  return nullptr;
}

/// Compressed-leaf byte layout (offsets page-relative; `header_bytes` is
/// the B+-tree's own PageHeader, which the codec never touches):
///
///   [0, header_bytes)              PageHeader (is_leaf = kCompressed)
///   [header_bytes, +2)             uint16 n_restarts
///   [header_bytes+2, +2)           uint16 reserved
///   [dir, dir + 20*n_restarts)     restart directory, 20-byte entries:
///                                    Key128 first_key  (unaligned, memcpy)
///                                    uint16 payload offset (page-relative)
///                                    uint16 reserved
///   [payload...]                   delta-coded entries, one block per
///                                  restart (kLeafRestartInterval entries)
///
/// Block payload: entry 0's key IS the restart key (no key bytes). Every
/// entry starts with a tag byte — bit0: hi changed vs predecessor, bit1:
/// value is non-zero (zero values, the common triple-index case, cost no
/// bytes). Then the key gap: varint(hi_delta) + varint(lo) when hi
/// changed, else varint(lo_delta); keys are strictly ascending so gaps
/// are plain unsigned varints. Then varint(value) if bit1.
namespace leaf_internal {

inline constexpr size_t kRestartEntryBytes = 16 + 2 + 2;
inline constexpr uint8_t kTagHiChanged = 1;
inline constexpr uint8_t kTagHasValue = 2;

inline size_t DirPos(size_t header_bytes) { return header_bytes + 4; }

inline void StoreRestart(uint8_t* page, size_t header_bytes, size_t index,
                         const Key128& key, uint16_t offset) {
  uint8_t* e = page + DirPos(header_bytes) + index * kRestartEntryBytes;
  std::memcpy(e, &key.hi, 8);
  std::memcpy(e + 8, &key.lo, 8);
  std::memcpy(e + 16, &offset, 2);
  std::memset(e + 18, 0, 2);
}

inline Key128 LoadRestartKey(const uint8_t* page, size_t header_bytes,
                             size_t index) {
  const uint8_t* e = page + DirPos(header_bytes) + index * kRestartEntryBytes;
  Key128 k;
  std::memcpy(&k.hi, e, 8);
  std::memcpy(&k.lo, e + 8, 8);
  return k;
}

inline uint16_t LoadRestartOffset(const uint8_t* page, size_t header_bytes,
                                  size_t index) {
  const uint8_t* e = page + DirPos(header_bytes) + index * kRestartEntryBytes;
  uint16_t off;
  std::memcpy(&off, e + 16, 2);
  return off;
}

}  // namespace leaf_internal

/// Builds one compressed leaf. Entries are staged in local buffers and
/// written to the page at Finish(), so a failed Append (page full) leaves
/// the page untouched and the caller simply starts the next leaf.
/// Keys must arrive strictly ascending (checked in debug builds).
class CompressedLeafBuilder {
 public:
  /// `page` is a kPageSize buffer; bytes [0, header_bytes) are reserved
  /// for the caller's page header.
  CompressedLeafBuilder(uint8_t* page, size_t header_bytes)
      : page_(page), header_bytes_(header_bytes) {
    payload_.reserve(kPageSize);
  }

  /// Appends one entry; false when it would overflow the page (the staged
  /// contents are unchanged — finish this leaf and retry on the next).
  [[nodiscard]] bool Append(const Key128& key, uint64_t value) {
    LODVIZ_DCHECK(count_ == 0 || prev_ < key)
        << "compressed leaf keys must be strictly ascending";
    if (count_ == 0xFFFF) return false;
    const bool restart = (count_ % kLeafRestartInterval) == 0;

    uint8_t buf[1 + 10 + 10 + 10];
    uint8_t* w = buf + 1;
    uint8_t tag = 0;
    if (!restart) {
      if (key.hi != prev_.hi) {
        tag |= leaf_internal::kTagHiChanged;
        w = PutVarint64(w, key.hi - prev_.hi);
        w = PutVarint64(w, key.lo);
      } else {
        w = PutVarint64(w, key.lo - prev_.lo);
      }
    }
    if (value != 0) {
      tag |= leaf_internal::kTagHasValue;
      w = PutVarint64(w, value);
    }
    buf[0] = tag;
    const size_t entry_bytes = static_cast<size_t>(w - buf);

    const size_t restarts_after = restarts_.size() + (restart ? 1 : 0);
    const size_t used_after =
        leaf_internal::DirPos(header_bytes_) +
        restarts_after * leaf_internal::kRestartEntryBytes +
        payload_.size() + entry_bytes;
    if (used_after > kPageSize) return false;

    if (restart) {
      restarts_.push_back({key, static_cast<uint16_t>(payload_.size())});
    }
    payload_.insert(payload_.end(), buf, w);
    prev_ = key;
    ++count_;
    return true;
  }

  size_t count() const { return count_; }

  /// Writes directory + payload into the page and returns the entry count.
  /// The caller still owns the page header (entry count, leaf format).
  uint16_t Finish() {
    const uint16_t n_restarts = static_cast<uint16_t>(restarts_.size());
    std::memcpy(page_ + header_bytes_, &n_restarts, 2);
    std::memset(page_ + header_bytes_ + 2, 0, 2);
    const size_t payload_pos =
        leaf_internal::DirPos(header_bytes_) +
        restarts_.size() * leaf_internal::kRestartEntryBytes;
    for (size_t i = 0; i < restarts_.size(); ++i) {
      leaf_internal::StoreRestart(
          page_, header_bytes_, i, restarts_[i].key,
          static_cast<uint16_t>(payload_pos + restarts_[i].offset));
    }
    std::memcpy(page_ + payload_pos, payload_.data(), payload_.size());
    return static_cast<uint16_t>(count_);
  }

 private:
  struct Restart {
    Key128 key;
    uint16_t offset;  // payload-relative until Finish()
  };

  uint8_t* page_;
  size_t header_bytes_;
  std::vector<Restart> restarts_;
  std::vector<uint8_t> payload_;
  Key128 prev_;
  size_t count_ = 0;
};

/// Reads one compressed leaf built by CompressedLeafBuilder. Stateless
/// over const page bytes, so concurrent readers of one pinned page are
/// safe. `ItemT` is any struct with Key128 `key` and uint64_t `value`
/// members (storage::BTree::Item, bench-local mirrors, ...).
class CompressedLeafReader {
 public:
  /// `count` comes from the caller's page header.
  CompressedLeafReader(const uint8_t* page, size_t header_bytes, size_t count)
      : page_(page), header_bytes_(header_bytes), count_(count) {
    uint16_t n;
    std::memcpy(&n, page_ + header_bytes_, 2);
    n_restarts_ = n;
  }

  size_t count() const { return count_; }
  size_t num_blocks() const { return n_restarts_; }

  /// Entries in block `b` (the last block may be short).
  size_t BlockCount(size_t b) const {
    const size_t begin = b * kLeafRestartInterval;
    const size_t end = std::min(count_, begin + kLeafRestartInterval);
    return end - begin;
  }

  Key128 RestartKey(size_t b) const {
    return leaf_internal::LoadRestartKey(page_, header_bytes_, b);
  }

  /// Decodes block `b` into `out` (room for kLeafRestartInterval items);
  /// returns the number decoded.
  template <typename ItemT>
  size_t DecodeBlock(size_t b, ItemT* out) const {
    const size_t n = BlockCount(b);
    const uint8_t* p =
        page_ + leaf_internal::LoadRestartOffset(page_, header_bytes_, b);
    const uint8_t* limit = page_ + kPageSize;
    Key128 key = RestartKey(b);
    for (size_t i = 0; i < n; ++i) {
      const uint8_t tag = *p++;
      if (i != 0) {
        uint64_t a = 0;
        if (tag & leaf_internal::kTagHiChanged) {
          p = GetVarint64(p, limit, &a);
          LODVIZ_CHECK(p != nullptr) << "corrupt compressed leaf";
          key.hi += a;
          p = GetVarint64(p, limit, &key.lo);
        } else {
          p = GetVarint64(p, limit, &a);
          key.lo += a;
        }
        LODVIZ_CHECK(p != nullptr) << "corrupt compressed leaf";
      }
      uint64_t value = 0;
      if (tag & leaf_internal::kTagHasValue) {
        p = GetVarint64(p, limit, &value);
        LODVIZ_CHECK(p != nullptr) << "corrupt compressed leaf";
      }
      out[i].key = key;
      out[i].value = value;
    }
    return n;
  }

  /// First block that can contain a key >= `lo`: the last block whose
  /// restart key is <= lo (earlier blocks end below lo), clamped to 0.
  size_t SeekBlock(const Key128& lo) const {
    size_t first = 0, last = n_restarts_;
    while (last - first > 1) {
      const size_t mid = (first + last) / 2;
      if (RestartKey(mid) <= lo) {
        first = mid;
      } else {
        last = mid;
      }
    }
    return first;
  }

  /// Appends every entry with key >= `lo` to `out`, in key order.
  template <typename ItemT>
  void DecodeFrom(const Key128& lo, std::vector<ItemT>* out) const {
    if (count_ == 0) return;
    ItemT block[kLeafRestartInterval];
    for (size_t b = SeekBlock(lo); b < n_restarts_; ++b) {
      const size_t n = DecodeBlock(b, block);
      for (size_t i = 0; i < n; ++i) {
        if (block[i].key < lo) continue;
        out->push_back(block[i]);
      }
    }
  }

  /// Point lookup; false when absent.
  bool Find(const Key128& key, uint64_t* value) const {
    if (count_ == 0) return false;
    struct Entry {
      Key128 key;
      uint64_t value;
    } block[kLeafRestartInterval];
    const size_t b = SeekBlock(key);
    const size_t n = DecodeBlock(b, block);
    for (size_t i = 0; i < n; ++i) {
      if (block[i].key == key) {
        *value = block[i].value;
        return true;
      }
      if (key < block[i].key) break;
    }
    return false;
  }

 private:
  const uint8_t* page_;
  size_t header_bytes_;
  size_t count_;
  size_t n_restarts_;
};

}  // namespace lodviz::storage

#endif  // LODVIZ_STORAGE_LEAF_CODEC_H_
