#include "storage/btree.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace lodviz::storage {

namespace {

// On-page layouts. Pages begin with a shared 16-byte header. `is_leaf`
// holds the LeafFormat value for leaves (1 = fixed, 2 = compressed) and
// 0 for internal nodes.
struct PageHeader {
  uint8_t is_leaf;
  uint8_t pad0;
  uint16_t count;
  PageId next_leaf;  // leaves only; kInvalidPageId otherwise
  uint64_t pad1;
};
static_assert(sizeof(PageHeader) == 16);

struct LeafEntry {
  Key128 key;
  uint64_t value;
};
static_assert(sizeof(LeafEntry) == sizeof(BTree::Item),
              "fixed leaf entries and Items share one layout");

constexpr size_t kLeafCapacity = (kPageSize - sizeof(PageHeader)) / sizeof(LeafEntry);

// Internal layout: header, keys[kInternalCapacity], children[kInternalCapacity+1].
constexpr size_t kInternalCapacity =
    (kPageSize - sizeof(PageHeader) - sizeof(PageId)) /
    (sizeof(Key128) + sizeof(PageId));

PageHeader* Header(uint8_t* page) { return reinterpret_cast<PageHeader*>(page); }

const PageHeader* Header(const uint8_t* page) {
  return reinterpret_cast<const PageHeader*>(page);
}

bool IsCompressedLeaf(const PageHeader* h) {
  return h->is_leaf == static_cast<uint8_t>(LeafFormat::kCompressed);
}

LeafEntry* LeafEntries(uint8_t* page) {
  return reinterpret_cast<LeafEntry*>(page + sizeof(PageHeader));
}

Key128* InternalKeys(uint8_t* page) {
  return reinterpret_cast<Key128*>(page + sizeof(PageHeader));
}

PageId* InternalChildren(uint8_t* page) {
  return reinterpret_cast<PageId*>(page + sizeof(PageHeader) +
                                   kInternalCapacity * sizeof(Key128));
}

void InitLeaf(uint8_t* page, LeafFormat format = LeafFormat::kFixed) {
  PageHeader* h = Header(page);
  h->is_leaf = static_cast<uint8_t>(format);
  h->count = 0;
  h->next_leaf = kInvalidPageId;
}

void InitInternal(uint8_t* page) {
  PageHeader* h = Header(page);
  h->is_leaf = 0;
  h->count = 0;
  h->next_leaf = kInvalidPageId;
}

CompressedLeafReader ReaderFor(const uint8_t* page) {
  return CompressedLeafReader(page, sizeof(PageHeader), Header(page)->count);
}

/// Re-encodes `items[begin, end)` into `page` as a compressed leaf,
/// preserving the header's next_leaf link. The range must fit (callers
/// only re-encode ranges no larger than what the page held before).
void ReencodeCompressedLeaf(uint8_t* page, const std::vector<BTree::Item>& items,
                            size_t begin, size_t end) {
  const PageId next = Header(page)->next_leaf;
  InitLeaf(page, LeafFormat::kCompressed);
  CompressedLeafBuilder builder(page, sizeof(PageHeader));
  for (size_t i = begin; i < end; ++i) {
    LODVIZ_CHECK(builder.Append(items[i].key, items[i].value))
        << "compressed leaf re-encode overflow: " << (end - begin)
        << " items do not fit a page that previously held them";
  }
  PageHeader* h = Header(page);
  h->count = builder.Finish();
  h->next_leaf = next;
}

}  // namespace

Result<BTree> BTree::Create(BufferPool* pool, LeafFormat format) {
  LODVIZ_ASSIGN_OR_RETURN(PageRef root, pool->NewPage());
  InitLeaf(root.data(), format);
  root.MarkDirty();
  return BTree(pool, root.page_id(), 0, 1);
}

BTree BTree::Attach(BufferPool* pool, PageId root, uint64_t size) {
  return BTree(pool, root, size, /*height=*/-1);
}

Result<uint64_t> BTree::Lookup(const Key128& key) const {
  PageId page_id = root_;
  while (true) {
    LODVIZ_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(page_id));
    const PageHeader* h = Header(page.data());
    if (h->is_leaf) {
      if (IsCompressedLeaf(h)) {
        uint64_t value = 0;
        if (ReaderFor(page.data()).Find(key, &value)) return value;
        return Status::NotFound("key not in btree");
      }
      const LeafEntry* entries = LeafEntries(page.data());
      const LeafEntry* end = entries + h->count;
      const LeafEntry* it = std::lower_bound(
          entries, end, key,
          [](const LeafEntry& e, const Key128& k) { return e.key < k; });
      if (it != end && it->key == key) return it->value;
      return Status::NotFound("key not in btree");
    }
    const Key128* keys = InternalKeys(page.data());
    const PageId* children = InternalChildren(page.data());
    size_t idx = static_cast<size_t>(
        std::upper_bound(keys, keys + h->count, key) - keys);
    page_id = children[idx];
  }
}

Result<BTree::SplitResult> BTree::InsertCompressedLeaf(PageRef& page,
                                                       const Key128& key,
                                                       uint64_t value) {
  // Decode, upsert in the sorted item vector, re-encode. One page decode
  // per insert keeps the code one straight path; point inserts after a
  // bulk load are the rare case (the store bulk-loads), and the fixed
  // format remains available where insert-heavy use matters.
  std::vector<Item> items;
  ReaderFor(page.data()).DecodeFrom(Key128::Min(), &items);
  auto it = std::lower_bound(
      items.begin(), items.end(), key,
      [](const Item& e, const Key128& k) { return e.key < k; });
  SplitResult r;
  if (it != items.end() && it->key == key) {
    it->value = value;
    r.inserted = false;
  } else {
    items.insert(it, Item{key, value});
    r.inserted = true;
  }

  // Re-encode in place when everything still fits.
  {
    CompressedLeafBuilder builder(page.data(), sizeof(PageHeader));
    bool fits = true;
    for (const Item& item : items) {
      if (!builder.Append(item.key, item.value)) {
        fits = false;
        break;
      }
    }
    if (fits) {
      const PageId next = Header(page.data())->next_leaf;
      InitLeaf(page.data(), LeafFormat::kCompressed);
      PageHeader* h = Header(page.data());
      h->count = builder.Finish();
      h->next_leaf = next;
      page.MarkDirty();
      return r;
    }
  }

  // Split: lower half re-encoded in place, upper half into a new right
  // sibling. Each half is at most as large as the pre-insert page
  // contents, so both re-encodes fit (checked in ReencodeCompressedLeaf).
  const size_t keep = items.size() / 2;
  LODVIZ_ASSIGN_OR_RETURN(PageRef right, pool_->NewPage());
  InitLeaf(right.data(), LeafFormat::kCompressed);
  Header(right.data())->next_leaf = Header(page.data())->next_leaf;
  ReencodeCompressedLeaf(right.data(), items, keep, items.size());
  ReencodeCompressedLeaf(page.data(), items, 0, keep);
  Header(page.data())->next_leaf = right.page_id();
  right.MarkDirty();
  page.MarkDirty();
  r.split = true;
  r.separator = items[keep].key;
  r.right = right.page_id();
  return r;
}

Result<BTree::SplitResult> BTree::InsertRec(PageId page_id, const Key128& key,
                                            uint64_t value) {
  LODVIZ_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(page_id));
  PageHeader* h = Header(page.data());

  if (h->is_leaf) {
    if (IsCompressedLeaf(h)) return InsertCompressedLeaf(page, key, value);
    LeafEntry* entries = LeafEntries(page.data());
    LeafEntry* end = entries + h->count;
    LeafEntry* it = std::lower_bound(
        entries, end, key,
        [](const LeafEntry& e, const Key128& k) { return e.key < k; });
    if (it != end && it->key == key) {
      it->value = value;
      page.MarkDirty();
      SplitResult r;
      r.inserted = false;
      return r;
    }
    // Shift right and insert.
    std::memmove(it + 1, it, static_cast<size_t>(end - it) * sizeof(LeafEntry));
    it->key = key;
    it->value = value;
    ++h->count;
    page.MarkDirty();

    SplitResult r;
    r.inserted = true;
    if (h->count < kLeafCapacity) return r;

    // Split leaf: move upper half to a new right sibling.
    LODVIZ_ASSIGN_OR_RETURN(PageRef right, pool_->NewPage());
    InitLeaf(right.data());
    PageHeader* rh = Header(right.data());
    LeafEntry* rentries = LeafEntries(right.data());
    uint16_t keep = h->count / 2;
    uint16_t moved = h->count - keep;
    std::memcpy(rentries, entries + keep, moved * sizeof(LeafEntry));
    rh->count = moved;
    rh->next_leaf = h->next_leaf;
    h->count = keep;
    h->next_leaf = right.page_id();
    right.MarkDirty();
    page.MarkDirty();
    r.split = true;
    r.separator = rentries[0].key;
    r.right = right.page_id();
    return r;
  }

  // Internal node: descend.
  Key128* keys = InternalKeys(page.data());
  PageId* children = InternalChildren(page.data());
  size_t idx = static_cast<size_t>(
      std::upper_bound(keys, keys + h->count, key) - keys);
  PageId child = children[idx];
  page.Release();  // avoid holding pins across the recursion

  LODVIZ_ASSIGN_OR_RETURN(SplitResult child_split, InsertRec(child, key, value));
  if (!child_split.split) return child_split;

  LODVIZ_ASSIGN_OR_RETURN(PageRef page2, pool_->Fetch(page_id));
  h = Header(page2.data());
  keys = InternalKeys(page2.data());
  children = InternalChildren(page2.data());
  // Re-locate the insertion point (structure may have shifted only via our
  // own child split, but recompute for safety).
  idx = static_cast<size_t>(
      std::upper_bound(keys, keys + h->count, child_split.separator) - keys);
  std::memmove(keys + idx + 1, keys + idx,
               (h->count - idx) * sizeof(Key128));
  std::memmove(children + idx + 2, children + idx + 1,
               (h->count - idx) * sizeof(PageId));
  keys[idx] = child_split.separator;
  children[idx + 1] = child_split.right;
  ++h->count;
  page2.MarkDirty();

  SplitResult r;
  r.inserted = child_split.inserted;
  if (h->count < kInternalCapacity) return r;

  // Split internal node: promote the middle key.
  LODVIZ_ASSIGN_OR_RETURN(PageRef right, pool_->NewPage());
  InitInternal(right.data());
  PageHeader* rh = Header(right.data());
  Key128* rkeys = InternalKeys(right.data());
  PageId* rchildren = InternalChildren(right.data());

  uint16_t mid = h->count / 2;
  Key128 promote = keys[mid];
  uint16_t moved = h->count - mid - 1;
  std::memcpy(rkeys, keys + mid + 1, moved * sizeof(Key128));
  std::memcpy(rchildren, children + mid + 1,
              (moved + 1) * sizeof(PageId));
  rh->count = moved;
  h->count = mid;
  right.MarkDirty();
  page2.MarkDirty();

  r.split = true;
  r.separator = promote;
  r.right = right.page_id();
  return r;
}

Status BTree::Insert(const Key128& key, uint64_t value, bool* inserted) {
  LODVIZ_ASSIGN_OR_RETURN(SplitResult r, InsertRec(root_, key, value));
  if (r.inserted) ++size_;
  if (inserted != nullptr) *inserted = r.inserted;
  if (r.split) {
    LODVIZ_ASSIGN_OR_RETURN(PageRef new_root, pool_->NewPage());
    InitInternal(new_root.data());
    PageHeader* h = Header(new_root.data());
    InternalKeys(new_root.data())[0] = r.separator;
    InternalChildren(new_root.data())[0] = root_;
    InternalChildren(new_root.data())[1] = r.right;
    h->count = 1;
    new_root.MarkDirty();
    root_ = new_root.page_id();
    if (height_ > 0) ++height_;
  }
  return Status::OK();
}

Status BTree::RangeScan(const Key128& lo, const Key128& hi,
                        const std::function<bool(const Item&)>& fn) const {
  return RangeScanRuns(lo, hi, [&](const Item* run, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (!fn(run[i])) return false;
    }
    return true;
  });
}

Status BTree::RangeScanRuns(
    const Key128& lo, const Key128& hi,
    const std::function<bool(const Item* run, size_t n)>& fn) const {
  // Descend to the leaf that may contain `lo`.
  PageId page_id = root_;
  while (true) {
    LODVIZ_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(page_id));
    const PageHeader* h = Header(page.data());
    if (h->is_leaf) break;
    const Key128* keys = InternalKeys(page.data());
    const PageId* children = InternalChildren(page.data());
    size_t idx = static_cast<size_t>(
        std::upper_bound(keys, keys + h->count, lo) - keys);
    page_id = children[idx];
  }

  // Walk leaves via next pointers, delivering one run per leaf. The
  // decode scratch is reused across leaves; only the first leaf needs the
  // lower-bound seek (every later leaf starts above `lo`).
  std::vector<Item> scratch;
  Key128 seek = lo;
  while (page_id != kInvalidPageId) {
    LODVIZ_ASSIGN_OR_RETURN(PageRef page, pool_->Fetch(page_id));
    const PageHeader* h = Header(page.data());
    const Item* run = nullptr;
    size_t n = 0;
    if (IsCompressedLeaf(h)) {
      scratch.clear();
      ReaderFor(page.data()).DecodeFrom(seek, &scratch);
      run = scratch.data();
      n = scratch.size();
    } else {
      const LeafEntry* entries = LeafEntries(page.data());
      const LeafEntry* end = entries + h->count;
      const LeafEntry* it = std::lower_bound(
          entries, end, seek,
          [](const LeafEntry& e, const Key128& k) { return e.key < k; });
      // LeafEntry and Item are layout-identical (static_assert above), so
      // fixed leaves deliver their page bytes as the run without a copy.
      run = reinterpret_cast<const Item*>(it);
      n = static_cast<size_t>(end - it);
    }
    // Trim the run at `hi`; anything past it ends the scan.
    const Item* cut = std::upper_bound(
        run, run + n, hi,
        [](const Key128& k, const Item& e) { return k < e.key; });
    const size_t m = static_cast<size_t>(cut - run);
    if (m > 0 && !fn(run, m)) return Status::OK();
    if (m < n) return Status::OK();
    seek = Key128::Min();
    page_id = h->next_leaf;
  }
  return Status::OK();
}

Result<BTree> BTree::BulkLoad(BufferPool* pool,
                              const std::vector<Item>& sorted_items,
                              LeafFormat format) {
  for (size_t i = 1; i < sorted_items.size(); ++i) {
    if (!(sorted_items[i - 1].key < sorted_items[i].key)) {
      return Status::InvalidArgument(
          "BTree::BulkLoad requires strictly ascending keys (duplicate or "
          "out-of-order item at index " + std::to_string(i) + ")");
    }
  }
  if (sorted_items.empty()) return Create(pool, format);

  // Build leaves left to right.
  struct LevelEntry {
    Key128 first_key;
    PageId page;
  };
  std::vector<LevelEntry> level;
  const size_t per_leaf = kLeafCapacity - 1;  // leave room for one insert
  size_t i = 0;
  PageId prev_leaf = kInvalidPageId;
  while (i < sorted_items.size()) {
    LODVIZ_ASSIGN_OR_RETURN(PageRef leaf, pool->NewPage());
    InitLeaf(leaf.data(), format);
    PageHeader* h = Header(leaf.data());
    size_t n = 0;
    if (format == LeafFormat::kCompressed) {
      CompressedLeafBuilder builder(leaf.data(), sizeof(PageHeader));
      while (i + n < sorted_items.size() &&
             builder.Append(sorted_items[i + n].key,
                            sorted_items[i + n].value)) {
        ++n;
      }
      h->count = builder.Finish();
    } else {
      LeafEntry* entries = LeafEntries(leaf.data());
      n = std::min(per_leaf, sorted_items.size() - i);
      for (size_t k = 0; k < n; ++k) {
        entries[k].key = sorted_items[i + k].key;
        entries[k].value = sorted_items[i + k].value;
      }
      h->count = static_cast<uint16_t>(n);
    }
    leaf.MarkDirty();
    level.push_back({sorted_items[i].key, leaf.page_id()});
    if (prev_leaf != kInvalidPageId) {
      LODVIZ_ASSIGN_OR_RETURN(PageRef prev, pool->Fetch(prev_leaf));
      Header(prev.data())->next_leaf = leaf.page_id();
      prev.MarkDirty();
    }
    prev_leaf = leaf.page_id();
    i += n;
  }

  // Build internal levels.
  int height = 1;
  const size_t per_node = kInternalCapacity - 1;
  while (level.size() > 1) {
    std::vector<LevelEntry> next;
    size_t j = 0;
    while (j < level.size()) {
      LODVIZ_ASSIGN_OR_RETURN(PageRef node, pool->NewPage());
      InitInternal(node.data());
      PageHeader* h = Header(node.data());
      Key128* keys = InternalKeys(node.data());
      PageId* children = InternalChildren(node.data());
      size_t n = std::min(per_node + 1, level.size() - j);  // children count
      children[0] = level[j].page;
      for (size_t k = 1; k < n; ++k) {
        keys[k - 1] = level[j + k].first_key;
        children[k] = level[j + k].page;
      }
      h->count = static_cast<uint16_t>(n - 1);
      node.MarkDirty();
      next.push_back({level[j].first_key, node.page_id()});
      j += n;
    }
    level = std::move(next);
    ++height;
  }

  return BTree(pool, level.front().page, sorted_items.size(), height);
}

}  // namespace lodviz::storage
