#ifndef LODVIZ_STORAGE_BUFFER_POOL_H_
#define LODVIZ_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"
#include "storage/page_file.h"

namespace lodviz::storage {

class BufferPool;

/// RAII pin on a buffered page. While alive, the frame cannot be evicted.
/// Move-only; unpins on destruction.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, int32_t frame);
  ~PageRef();

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  uint8_t* data();
  const uint8_t* data() const;
  PageId page_id() const;

  /// Marks the page dirty so it is written back before eviction.
  void MarkDirty();

  /// Releases the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  int32_t frame_ = -1;
};

/// Fixed-capacity page cache over a PageFile with LRU eviction of unpinned
/// frames. This is what lets lodviz explore datasets larger than memory —
/// the survey's "systems should be integrated with disk structures,
/// retrieving data dynamically during runtime" (Section 4).
class BufferPool {
 public:
  BufferPool(PageFile* file, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss.
  Result<PageRef> Fetch(PageId id);

  /// Allocates a new page on disk and pins it (already zeroed).
  Result<PageRef> NewPage();

  /// Writes back all dirty frames.
  Status FlushAll();

  size_t capacity() const { return frames_.size(); }
  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }
  double HitRate() const {
    uint64_t total = hits() + misses();
    return total ? static_cast<double>(hits()) / static_cast<double>(total)
                 : 0.0;
  }
  /// Resets this pool's counters; the process-wide aggregates in the obs
  /// registry (storage.buffer_pool.*) are monotonic and unaffected (any
  /// not-yet-flushed hit batch is folded in first).
  void ResetCounters() {
    FlushAggregates();
    hits_.Reset();
    misses_.Reset();
    evictions_.Reset();
  }

  /// Bytes held by page frames.
  size_t MemoryUsage() const { return frames_.size() * kPageSize; }

 private:
  friend class PageRef;

  struct Frame {
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    uint64_t lru_tick = 0;
    std::unique_ptr<uint8_t[]> data;
  };

  /// Finds a free or evictable frame; error if all frames are pinned.
  Result<int32_t> GetVictimFrame();

  void Unpin(int32_t frame);

  /// Folds the unflushed tail of the hit batch into the registry aggregate
  /// (hits flush in batches of kAggBatch to keep the hit path at a single
  /// atomic op; misses and evictions are rare and flush per event).
  void FlushAggregates();

  /// Hit-count batch size for registry aggregation; the process-wide
  /// `storage.buffer_pool.hits` counter lags a live pool by < kAggBatch.
  static constexpr uint64_t kAggBatch = 64;

  PageFile* file_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, int32_t> page_table_;
  uint64_t tick_ = 0;
  // Per-instance atomic counters (lock-free, so the pin path stays clean
  // under TSan) feeding the per-pool accessors above; the aggregates
  // below fold every pool into the process-wide metric registry.
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter* agg_hits_;
  obs::Counter* agg_misses_;
  obs::Counter* agg_evictions_;
};

}  // namespace lodviz::storage

#endif  // LODVIZ_STORAGE_BUFFER_POOL_H_
