#ifndef LODVIZ_STORAGE_BUFFER_POOL_H_
#define LODVIZ_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/page_file.h"

namespace lodviz::storage {

class BufferPool;

/// RAII pin on a buffered page. While alive, the frame cannot be evicted.
/// Move-only; unpins on destruction.
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, int32_t frame);
  ~PageRef();

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  uint8_t* data();
  const uint8_t* data() const;
  PageId page_id() const;

  /// Marks the page dirty so it is written back before eviction.
  void MarkDirty();

  /// Releases the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  int32_t frame_ = -1;
};

/// Fixed-capacity page cache over a PageFile with LRU eviction of unpinned
/// frames. This is what lets lodviz explore datasets larger than memory —
/// the survey's "systems should be integrated with disk structures,
/// retrieving data dynamically during runtime" (Section 4).
///
/// The frame table is split into lock-striped shards (a power of two,
/// sized so every shard keeps at least 8 frames): each page hashes to a
/// home shard whose mutex covers that shard's page table, LRU clock and
/// frame metadata. Fetches of pages in different shards proceed fully in
/// parallel; pin counts are atomic so Unpin (the PageRef destructor) never
/// takes a lock at all. Eviction is shard-local — a pathological workload
/// pinning every frame of one shard can exhaust it while other shards
/// have free frames, which is the usual striping trade-off.
class BufferPool {
 public:
  BufferPool(PageFile* file, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins page `id`, reading it from disk on a miss. Safe to call
  /// concurrently; fetches that land in different shards do not contend.
  Result<PageRef> Fetch(PageId id);

  /// Allocates a new page on disk and pins it (already zeroed).
  Result<PageRef> NewPage();

  /// Writes back all dirty frames.
  Status FlushAll();

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return num_shards_; }
  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t evictions() const { return evictions_.value(); }
  double HitRate() const {
    uint64_t total = hits() + misses();
    return total ? static_cast<double>(hits()) / static_cast<double>(total)
                 : 0.0;
  }
  /// Resets this pool's counters; the process-wide aggregates in the obs
  /// registry (storage.buffer_pool.*) are monotonic and unaffected (any
  /// not-yet-flushed hit batch is folded in first).
  void ResetCounters() {
    FlushAggregates();
    hits_.Reset();
    misses_.Reset();
    evictions_.Reset();
  }

  /// Bytes held by page frames.
  size_t MemoryUsage() const { return capacity_ * kPageSize; }

 private:
  friend class PageRef;

  struct Frame {
    /// Identity and recency are only touched under the home shard's mutex.
    PageId page_id = kInvalidPageId;
    uint64_t lru_tick = 0;
    /// Pins drop without a lock (PageRef destruction, release order); the
    /// evictor reads with acquire under the shard mutex, so a zero implies
    /// it observes everything the last pinner wrote.
    std::atomic<uint32_t> pin_count{0};
    std::atomic<bool> dirty{false};
    std::unique_ptr<uint8_t[]> data;
  };

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<PageId, int32_t> page_table LODVIZ_GUARDED_BY(mu);
    uint64_t tick LODVIZ_GUARDED_BY(mu) = 0;
    /// Frame range [begin, end) owned by this shard. Written once by the
    /// pool constructor before any concurrent access; immutable afterwards
    /// (can't be const: shards live in a default-constructed array).
    // LINT-ALLOW(concurrency.guarded_by): set once in BufferPool ctor
    int32_t begin = 0;
    // LINT-ALLOW(concurrency.guarded_by): set once in BufferPool ctor
    int32_t end = 0;
  };

  /// Number of shards for `capacity` frames: the largest power of two
  /// <= 8 that still leaves every shard at least 8 frames (tiny pools —
  /// the 8-page test fixtures — degrade to a single shard).
  static size_t PickShards(size_t capacity);

  Shard& ShardOf(PageId id) {
    return shards_[(static_cast<uint64_t>(id) * 2654435761ULL >> 16) &
                   (num_shards_ - 1)];
  }

  /// Finds a free or evictable frame in `shard` (writing back a dirty
  /// victim); error if all of the shard's frames are pinned.
  Result<int32_t> GetVictimFrame(Shard& shard) LODVIZ_REQUIRES(shard.mu);

  /// Installs page `id` into `frame` after a miss/alloc, pinned once.
  void InstallFrame(Shard& shard, int32_t frame, PageId id, bool dirty)
      LODVIZ_REQUIRES(shard.mu);

  void Unpin(int32_t frame);

  /// Folds the unflushed tail of the hit batch into the registry aggregate
  /// (hits flush in batches of kAggBatch to keep the hit path at a single
  /// atomic op; misses and evictions are rare and flush per event).
  void FlushAggregates();

  /// Hit-count batch size for registry aggregation; the process-wide
  /// `storage.buffer_pool.hits` counter lags a live pool by < kAggBatch.
  static constexpr uint64_t kAggBatch = 64;

  /// Validates the pool size so the const members below can be built in
  /// the initializer list.
  static size_t ValidatedCapacity(size_t capacity_pages);

  // Everything below the shard array is immutable after construction (the
  // pointers are const; the pointees carry their own synchronization), so
  // the shard mutexes guard exactly the mutable state annotated above.
  PageFile* const file_;
  const size_t capacity_;
  const size_t num_shards_;
  const std::unique_ptr<Frame[]> frames_;
  const std::unique_ptr<Shard[]> shards_;
  // Per-instance atomic counters (lock-free, so the pin path stays clean
  // under TSan) feeding the per-pool accessors above; the aggregates
  // below fold every pool into the process-wide metric registry.
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Counter* const agg_hits_;
  obs::Counter* const agg_misses_;
  obs::Counter* const agg_evictions_;
};

}  // namespace lodviz::storage

#endif  // LODVIZ_STORAGE_BUFFER_POOL_H_
