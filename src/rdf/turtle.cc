#include "rdf/turtle.h"

#include <cctype>
#include <unordered_map>

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace lodviz::rdf {

namespace {

/// Recursive-descent Turtle parser over a raw character buffer.
class TurtleParser {
 public:
  TurtleParser(std::string_view input, TripleStore* store)
      : in_(input), store_(store) {}

  Result<size_t> Parse() {
    while (true) {
      SkipWs();
      if (pos_ >= in_.size()) break;
      LODVIZ_RETURN_NOT_OK(ParseStatement());
    }
    return added_;
  }

 private:
  void SkipWs() {
    while (pos_ < in_.size()) {
      char c = in_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < in_.size() && in_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool LookingAt(std::string_view word) const {
    return in_.substr(pos_, word.size()) == word;
  }

  /// Case-insensitive keyword match followed by whitespace.
  bool LookingAtKeyword(std::string_view word) const {
    if (pos_ + word.size() > in_.size()) return false;
    for (size_t i = 0; i < word.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(in_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(word[i]))) {
        return false;
      }
    }
    size_t after = pos_ + word.size();
    return after >= in_.size() ||
           std::isspace(static_cast<unsigned char>(in_[after]));
  }

  Status Err(std::string msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= in_.size() || in_[pos_] != c) {
      return Err(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseStatement() {
    if (LookingAt("@prefix") || LookingAtKeyword("PREFIX")) {
      bool at_form = in_[pos_] == '@';
      pos_ += at_form ? 7 : 6;
      LODVIZ_RETURN_NOT_OK(ParsePrefixDecl());
      if (at_form) LODVIZ_RETURN_NOT_OK(Expect('.'));
      return Status::OK();
    }
    if (LookingAt("@base") || LookingAtKeyword("BASE")) {
      bool at_form = in_[pos_] == '@';
      pos_ += at_form ? 5 : 4;
      SkipWs();
      LODVIZ_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      base_ = std::move(iri);
      if (at_form) LODVIZ_RETURN_NOT_OK(Expect('.'));
      return Status::OK();
    }
    // Triples block.
    LODVIZ_ASSIGN_OR_RETURN(Term subject, ParseSubject());
    LODVIZ_RETURN_NOT_OK(ParsePredicateObjectList(subject));
    return Expect('.');
  }

  Status ParsePrefixDecl() {
    SkipWs();
    size_t colon = in_.find(':', pos_);
    if (colon == std::string_view::npos) return Err("missing ':' in prefix");
    std::string name(TrimWhitespace(in_.substr(pos_, colon - pos_)));
    pos_ = colon + 1;
    SkipWs();
    LODVIZ_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
    prefixes_[name] = std::move(iri);
    return Status::OK();
  }

  Result<std::string> ParseIriRef() {
    SkipWs();
    if (pos_ >= in_.size() || in_[pos_] != '<') return Err("expected IRI");
    size_t end = in_.find('>', pos_ + 1);
    if (end == std::string_view::npos) return Err("unterminated IRI");
    std::string iri(in_.substr(pos_ + 1, end - pos_ - 1));
    pos_ = end + 1;
    // Resolve relative IRIs against the base (simple concatenation
    // resolution, sufficient for test data).
    if (!base_.empty() && iri.find("://") == std::string::npos) {
      iri = base_ + iri;
    }
    return iri;
  }

  Result<Term> ParseSubject() {
    SkipWs();
    if (pos_ >= in_.size()) return Err("expected subject");
    char c = in_[pos_];
    if (c == '<') {
      LODVIZ_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      return Term::Iri(std::move(iri));
    }
    if (c == '_') return ParseBlankLabel();
    if (c == '[') return ParseAnonBlank();
    return ParsePName();
  }

  Result<Term> ParseBlankLabel() {
    if (pos_ + 1 >= in_.size() || in_[pos_ + 1] != ':') {
      return Err("malformed blank node");
    }
    size_t start = pos_ + 2;
    size_t end = start;
    while (end < in_.size() && (std::isalnum(static_cast<unsigned char>(
                                    in_[end])) ||
                                in_[end] == '_')) {
      ++end;
    }
    if (end == start) return Err("empty blank node label");
    Term t = Term::Blank(std::string(in_.substr(start, end - start)));
    pos_ = end;
    return t;
  }

  /// '[' predicateObjectList ']': emits the nested triples and returns the
  /// fresh blank node.
  Result<Term> ParseAnonBlank() {
    ++pos_;  // '['
    Term node = Term::Blank("anon" + std::to_string(next_anon_++));
    SkipWs();
    if (pos_ < in_.size() && in_[pos_] == ']') {
      ++pos_;
      return node;
    }
    LODVIZ_RETURN_NOT_OK(ParsePredicateObjectList(node));
    LODVIZ_RETURN_NOT_OK(Expect(']'));
    return node;
  }

  Result<Term> ParsePName() {
    size_t end = pos_;
    while (end < in_.size()) {
      char c = in_[end];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == ':' || c == '.' || c == '/') {
        ++end;
      } else {
        break;
      }
    }
    std::string pname(in_.substr(pos_, end - pos_));
    // Trailing '.' is the statement terminator.
    while (!pname.empty() && pname.back() == '.') {
      pname.pop_back();
      --end;
    }
    size_t colon = pname.find(':');
    if (colon == std::string::npos) {
      return Err("expected prefixed name, got '" + pname + "'");
    }
    auto it = prefixes_.find(pname.substr(0, colon));
    if (it == prefixes_.end()) {
      return Status::ParseError("unknown prefix '" + pname.substr(0, colon) +
                                ":' at offset " + std::to_string(pos_));
    }
    pos_ = end;
    return Term::Iri(it->second + pname.substr(colon + 1));
  }

  Result<Term> ParseVerb() {
    SkipWs();
    if (pos_ < in_.size() && in_[pos_] == 'a') {
      size_t after = pos_ + 1;
      if (after >= in_.size() ||
          std::isspace(static_cast<unsigned char>(in_[after]))) {
        ++pos_;
        return Term::Iri(vocab::kRdfType);
      }
    }
    if (pos_ < in_.size() && in_[pos_] == '<') {
      LODVIZ_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      return Term::Iri(std::move(iri));
    }
    return ParsePName();
  }

  Result<Term> ParseObject() {
    SkipWs();
    if (pos_ >= in_.size()) return Err("expected object");
    char c = in_[pos_];
    if (c == '<') {
      LODVIZ_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      return Term::Iri(std::move(iri));
    }
    if (c == '_') return ParseBlankLabel();
    if (c == '[') return ParseAnonBlank();
    if (c == '"') return ParseLiteral();
    if (c == '(') return Err("RDF collections are not supported");
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-') {
      return ParseNumber();
    }
    if (LookingAtTrueFalse()) {
      bool value = in_[pos_] == 't';
      pos_ += value ? 4 : 5;
      return Term::BoolLiteral(value);
    }
    return ParsePName();
  }

  bool LookingAtTrueFalse() const {
    auto boundary = [&](size_t after) {
      return after >= in_.size() ||
             !(std::isalnum(static_cast<unsigned char>(in_[after])) ||
               in_[after] == '_');
    };
    if (in_.substr(pos_, 4) == "true" && boundary(pos_ + 4)) return true;
    if (in_.substr(pos_, 5) == "false" && boundary(pos_ + 5)) return true;
    return false;
  }

  Result<Term> ParseNumber() {
    size_t end = pos_;
    if (in_[end] == '+' || in_[end] == '-') ++end;
    bool dot = false, exp = false;
    while (end < in_.size()) {
      char c = in_[end];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++end;
      } else if (c == '.' && !dot && !exp && end + 1 < in_.size() &&
                 std::isdigit(static_cast<unsigned char>(in_[end + 1]))) {
        dot = true;
        ++end;
      } else if ((c == 'e' || c == 'E') && !exp) {
        exp = true;
        ++end;
        if (end < in_.size() && (in_[end] == '+' || in_[end] == '-')) ++end;
      } else {
        break;
      }
    }
    std::string text(in_.substr(pos_, end - pos_));
    pos_ = end;
    const char* dt = exp   ? vocab::kXsdDouble
                     : dot ? vocab::kXsdDecimal
                           : vocab::kXsdInteger;
    return Term::Literal(std::move(text), dt);
  }

  Result<Term> ParseLiteral() {
    std::string value;
    if (in_.substr(pos_, 3) == "\"\"\"") {
      size_t end = in_.find("\"\"\"", pos_ + 3);
      if (end == std::string_view::npos) return Err("unterminated long string");
      LODVIZ_ASSIGN_OR_RETURN(
          value, UnescapeNTriplesString(in_.substr(pos_ + 3, end - pos_ - 3)));
      pos_ = end + 3;
    } else {
      size_t i = pos_ + 1;
      while (i < in_.size()) {
        if (in_[i] == '\\') {
          i += 2;
          continue;
        }
        if (in_[i] == '"') break;
        ++i;
      }
      if (i >= in_.size()) return Err("unterminated string");
      LODVIZ_ASSIGN_OR_RETURN(
          value, UnescapeNTriplesString(in_.substr(pos_ + 1, i - pos_ - 1)));
      pos_ = i + 1;
    }
    Term t = Term::Literal(std::move(value));
    if (pos_ < in_.size() && in_[pos_] == '@') {
      size_t start = ++pos_;
      while (pos_ < in_.size() &&
             (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
              in_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ == start) return Err("empty language tag");
      t.language = std::string(in_.substr(start, pos_ - start));
    } else if (in_.substr(pos_, 2) == "^^") {
      pos_ += 2;
      SkipWs();
      if (pos_ < in_.size() && in_[pos_] == '<') {
        LODVIZ_ASSIGN_OR_RETURN(std::string dt, ParseIriRef());
        t.datatype = std::move(dt);
      } else {
        LODVIZ_ASSIGN_OR_RETURN(Term dt, ParsePName());
        t.datatype = dt.lexical;
      }
    }
    return t;
  }

  Status ParsePredicateObjectList(const Term& subject) {
    while (true) {
      LODVIZ_ASSIGN_OR_RETURN(Term predicate, ParseVerb());
      if (!predicate.is_iri()) return Err("predicate must be an IRI");
      while (true) {
        LODVIZ_ASSIGN_OR_RETURN(Term object, ParseObject());
        store_->Add(subject, predicate, object);
        ++added_;
        SkipWs();
        if (pos_ < in_.size() && in_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipWs();
      if (pos_ < in_.size() && in_[pos_] == ';') {
        ++pos_;
        SkipWs();
        // A ';' may be followed directly by '.' or ']' (trailing semicolon).
        if (pos_ < in_.size() && (in_[pos_] == '.' || in_[pos_] == ']')) break;
        continue;
      }
      break;
    }
    return Status::OK();
  }

  std::string_view in_;
  TripleStore* store_;
  size_t pos_ = 0;
  size_t added_ = 0;
  uint64_t next_anon_ = 0;
  std::string base_;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

Result<size_t> LoadTurtleString(std::string_view document,
                                TripleStore* store) {
  TurtleParser parser(document, store);
  return parser.Parse();
}

}  // namespace lodviz::rdf
