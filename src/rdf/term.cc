#include "rdf/term.h"

#include <cctype>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace lodviz::rdf {

namespace {

bool LooksNumeric(std::string_view s) {
  if (s.empty()) return false;
  size_t i = 0;
  if (s[0] == '+' || s[0] == '-') i = 1;
  bool digit = false, dot = false, exp = false;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c == '.' && !dot && !exp) {
      dot = true;
    } else if ((c == 'e' || c == 'E') && digit && !exp) {
      exp = true;
      if (i + 1 < s.size() && (s[i + 1] == '+' || s[i + 1] == '-')) ++i;
    } else {
      return false;
    }
  }
  return digit;
}

}  // namespace

Term Term::DoubleLiteral(double value) {
  return Literal(FormatDouble(value, 9), vocab::kXsdDouble);
}

Term Term::IntLiteral(int64_t value) {
  return Literal(std::to_string(value), vocab::kXsdInteger);
}

Term Term::BoolLiteral(bool value) {
  return Literal(value ? "true" : "false", vocab::kXsdBoolean);
}

Term Term::DateTimeLiteral(int64_t epoch_seconds) {
  return Literal(FormatDateTime(epoch_seconds), vocab::kXsdDateTime);
}

bool Term::IsNumericLiteral() const {
  if (!is_literal()) return false;
  if (datatype == vocab::kXsdInteger || datatype == vocab::kXsdDecimal ||
      datatype == vocab::kXsdDouble || datatype == vocab::kXsdFloat) {
    return true;
  }
  if (datatype.empty() && language.empty()) return LooksNumeric(lexical);
  return false;
}

bool Term::IsTemporalLiteral() const {
  if (!is_literal()) return false;
  return datatype == vocab::kXsdDateTime || datatype == vocab::kXsdDate;
}

Result<double> Term::AsDouble() const {
  if (!is_literal()) {
    return Status::InvalidArgument("AsDouble on non-literal term");
  }
  const char* begin = lexical.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    return Status::ParseError("not a number: '" + lexical + "'");
  }
  return v;
}

Result<int64_t> Term::AsEpochSeconds() const {
  if (!is_literal()) {
    return Status::InvalidArgument("AsEpochSeconds on non-literal term");
  }
  return ParseDateTime(lexical);
}

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri: {
      std::string out;
      out.reserve(lexical.size() + 2);
      out += '<';
      out += lexical;
      out += '>';
      return out;
    }
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"";
      out += EscapeNTriplesString(lexical);
      out += '"';
      if (!language.empty()) {
        out += "@" + language;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
  }
  return "";
}

std::string EscapeNTriplesString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeNTriplesString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) {
      return Status::ParseError("dangling backslash in literal");
    }
    char next = s[++i];
    switch (next) {
      case '\\':
        out += '\\';
        break;
      case '"':
        out += '"';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u':
      case 'U': {
        // \uXXXX / \UXXXXXXXX: decode to UTF-8. UTF-16 surrogate pairs
        // written as two \u escapes combine into one code point; a lone
        // surrogate or a value beyond U+10FFFF is not a character and is
        // rejected rather than emitted as invalid (CESU-8) bytes.
        auto read_hex = [&](size_t at, size_t len,
                            uint32_t* cp) -> Status {
          if (at + len > s.size()) {
            return Status::ParseError("truncated unicode escape");
          }
          uint32_t v = 0;
          for (size_t k = 0; k < len; ++k) {
            char h = s[at + k];
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              v |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              v |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Status::ParseError("bad unicode escape digit");
            }
          }
          *cp = v;
          return Status::OK();
        };
        size_t len = (next == 'u') ? 4 : 8;
        uint32_t cp = 0;
        LODVIZ_RETURN_NOT_OK(read_hex(i + 1, len, &cp));
        i += len;
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          // High surrogate: only meaningful as the first half of a \u
          // pair; combine with the trailing low surrogate.
          if (next != 'u' || i + 2 >= s.size() || s[i + 1] != '\\' ||
              s[i + 2] != 'u') {
            return Status::ParseError("lone high surrogate in unicode escape");
          }
          uint32_t low = 0;
          LODVIZ_RETURN_NOT_OK(read_hex(i + 3, 4, &low));
          if (low < 0xDC00 || low > 0xDFFF) {
            return Status::ParseError(
                "high surrogate not followed by low surrogate");
          }
          cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          i += 6;  // the "\uXXXX" of the low half
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
          return Status::ParseError("lone low surrogate in unicode escape");
        }
        if (cp > 0x10FFFF) {
          return Status::ParseError("unicode escape beyond U+10FFFF");
        }
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (cp >> 18));
          out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        break;
      }
      default:
        return Status::ParseError(std::string("unknown escape \\") + next);
    }
  }
  return out;
}

namespace {

constexpr int kDaysPerMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

bool IsLeap(int64_t y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

/// Days from 1970-01-01 to y-m-d (proleptic Gregorian); no validation.
int64_t DaysFromCivil(int64_t y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + doe - 719468;
}

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t z, int64_t* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const int64_t doe = z - era * 146097;
  const int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yr = yoe + era * 400;
  const int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const int64_t mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = yr + (*m <= 2);
}

bool ParseFixedInt(std::string_view s, size_t pos, size_t len, int64_t* out) {
  if (pos + len > s.size()) return false;
  int64_t v = 0;
  for (size_t i = pos; i < pos + len; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
    v = v * 10 + (s[i] - '0');
  }
  *out = v;
  return true;
}

}  // namespace

Result<int64_t> ParseDateTime(std::string_view s) {
  // Accepted: YYYY-MM-DD, YYYY-MM-DDThh:mm:ss, optional trailing 'Z'.
  int64_t year = 0, month = 0, day = 0;
  if (!ParseFixedInt(s, 0, 4, &year) || s.size() < 10 || s[4] != '-' ||
      !ParseFixedInt(s, 5, 2, &month) || s[7] != '-' ||
      !ParseFixedInt(s, 8, 2, &day)) {
    return Status::ParseError("bad date: '" + std::string(s) + "'");
  }
  if (month < 1 || month > 12) {
    return Status::ParseError("bad month in '" + std::string(s) + "'");
  }
  int max_day = kDaysPerMonth[month - 1] + (month == 2 && IsLeap(year) ? 1 : 0);
  if (day < 1 || day > max_day) {
    return Status::ParseError("bad day in '" + std::string(s) + "'");
  }
  int64_t seconds =
      DaysFromCivil(year, static_cast<int>(month), static_cast<int>(day)) *
      86400;
  if (s.size() > 10) {
    if (s[10] != 'T' || s.size() < 19) {
      return Status::ParseError("bad time in '" + std::string(s) + "'");
    }
    int64_t hh = 0, mm = 0, ss = 0;
    if (!ParseFixedInt(s, 11, 2, &hh) || s[13] != ':' ||
        !ParseFixedInt(s, 14, 2, &mm) || s[16] != ':' ||
        !ParseFixedInt(s, 17, 2, &ss)) {
      return Status::ParseError("bad time in '" + std::string(s) + "'");
    }
    if (hh > 23 || mm > 59 || ss > 60) {
      return Status::ParseError("time out of range in '" + std::string(s) + "'");
    }
    seconds += hh * 3600 + mm * 60 + ss;
    size_t rest = 19;
    if (rest < s.size() && s[rest] == '.') {
      ++rest;
      while (rest < s.size() &&
             std::isdigit(static_cast<unsigned char>(s[rest]))) {
        ++rest;
      }
    }
    if (rest < s.size() && s[rest] == 'Z') ++rest;
    if (rest != s.size()) {
      return Status::ParseError("trailing chars in '" + std::string(s) + "'");
    }
  }
  return seconds;
}

std::string FormatDateTime(int64_t epoch_seconds) {
  int64_t days = epoch_seconds / 86400;
  int64_t rem = epoch_seconds % 86400;
  if (rem < 0) {
    rem += 86400;
    days -= 1;
  }
  int64_t y;
  int m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[40];
  std::snprintf(buf, sizeof(buf),
                "%04" PRId64 "-%02d-%02dT%02d:%02d:%02dZ", y, m, d,
                static_cast<int>(rem / 3600), static_cast<int>((rem / 60) % 60),
                static_cast<int>(rem % 60));
  return buf;
}

}  // namespace lodviz::rdf
