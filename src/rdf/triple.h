#ifndef LODVIZ_RDF_TRIPLE_H_
#define LODVIZ_RDF_TRIPLE_H_

#include <tuple>

#include "rdf/dictionary.h"

namespace lodviz::rdf {

/// A dictionary-encoded RDF statement.
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  Triple() = default;
  Triple(TermId subject, TermId predicate, TermId object)
      : s(subject), p(predicate), o(object) {}

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
  bool operator!=(const Triple& other) const { return !(*this == other); }
};

/// Orderings backing the three triple-store indexes.
struct OrderSpo {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  }
};
struct OrderPos {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.p, a.o, a.s) < std::tie(b.p, b.o, b.s);
  }
};
struct OrderOsp {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.o, a.s, a.p) < std::tie(b.o, b.s, b.p);
  }
};

/// A triple pattern: kInvalidTermId (0) fields are wildcards.
struct TriplePattern {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  TriplePattern() = default;
  TriplePattern(TermId subject, TermId predicate, TermId object)
      : s(subject), p(predicate), o(object) {}

  bool Matches(const Triple& t) const {
    return (s == kInvalidTermId || s == t.s) &&
           (p == kInvalidTermId || p == t.p) &&
           (o == kInvalidTermId || o == t.o);
  }

  /// Number of bound positions (0..3).
  int BoundCount() const {
    return (s != kInvalidTermId) + (p != kInvalidTermId) + (o != kInvalidTermId);
  }
};

}  // namespace lodviz::rdf

#endif  // LODVIZ_RDF_TRIPLE_H_
