#ifndef LODVIZ_RDF_TURTLE_H_
#define LODVIZ_RDF_TURTLE_H_

#include <string_view>

#include "common/result.h"
#include "rdf/triple_store.h"

namespace lodviz::rdf {

/// Parses a Turtle document (the Web of Data's lingua franca) into
/// `store`. Returns the number of triples added.
///
/// Supported subset:
///   @prefix / PREFIX and @base / BASE declarations
///   prefixed names and <IRIs> (resolved against the base when relative)
///   'a' for rdf:type; ';' and ',' predicate/object lists
///   literals: "..." and """...""" with @lang or ^^datatype,
///             integers/decimals/doubles, true/false
///   blank nodes: _:label and anonymous [ p o ; ... ] property lists
///   comments (#) and arbitrary whitespace
///
/// Not supported (errors): collections ( ... ), RDF-star, quoted graphs.
Result<size_t> LoadTurtleString(std::string_view document, TripleStore* store);

}  // namespace lodviz::rdf

#endif  // LODVIZ_RDF_TURTLE_H_
