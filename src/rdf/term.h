#ifndef LODVIZ_RDF_TERM_H_
#define LODVIZ_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace lodviz::rdf {

/// The three RDF term kinds.
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// An RDF term: IRI, literal (with optional datatype IRI or language tag),
/// or blank node. A passive value type; the dictionary (dictionary.h) maps
/// terms to dense integer ids used everywhere else.
struct Term {
  TermKind kind = TermKind::kIri;
  /// IRI string, literal lexical form, or blank node label.
  std::string lexical;
  /// Datatype IRI for typed literals; empty otherwise.
  std::string datatype;
  /// Language tag for language-tagged literals; empty otherwise.
  std::string language;

  static Term Iri(std::string iri) {
    Term t;
    t.kind = TermKind::kIri;
    t.lexical = std::move(iri);
    return t;
  }

  static Term Literal(std::string value, std::string datatype_iri = "") {
    Term t;
    t.kind = TermKind::kLiteral;
    t.lexical = std::move(value);
    t.datatype = std::move(datatype_iri);
    return t;
  }

  static Term LangLiteral(std::string value, std::string lang) {
    Term t;
    t.kind = TermKind::kLiteral;
    t.lexical = std::move(value);
    t.language = std::move(lang);
    return t;
  }

  static Term Blank(std::string label) {
    Term t;
    t.kind = TermKind::kBlank;
    t.lexical = std::move(label);
    return t;
  }

  /// Convenience constructors for typed literals.
  static Term DoubleLiteral(double value);
  static Term IntLiteral(int64_t value);
  static Term BoolLiteral(bool value);
  /// Seconds since epoch, rendered as xsd:dateTime "YYYY-MM-DDThh:mm:ssZ".
  static Term DateTimeLiteral(int64_t epoch_seconds);

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  /// True for literals whose datatype is one of the xsd numeric types (or
  /// untyped lexical forms that parse as numbers).
  bool IsNumericLiteral() const;
  /// True for xsd:dateTime / xsd:date literals.
  bool IsTemporalLiteral() const;

  /// Numeric value of a literal; error if not parseable.
  Result<double> AsDouble() const;
  /// Epoch seconds of an xsd:dateTime/xsd:date literal.
  Result<int64_t> AsEpochSeconds() const;

  /// Canonical N-Triples serialization (<iri>, "lit"^^<dt>, _:b).
  std::string ToNTriples() const;

  bool operator==(const Term& other) const {
    return kind == other.kind && lexical == other.lexical &&
           datatype == other.datatype && language == other.language;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }
};

/// Escapes a string for N-Triples double-quoted literals.
std::string EscapeNTriplesString(std::string_view s);
/// Reverses EscapeNTriplesString; error on malformed escapes.
Result<std::string> UnescapeNTriplesString(std::string_view s);

/// Parses "YYYY-MM-DD[Thh:mm:ss[Z]]" into epoch seconds (UTC, proleptic
/// Gregorian).
Result<int64_t> ParseDateTime(std::string_view s);
/// Inverse of ParseDateTime; always renders full dateTime with Z.
std::string FormatDateTime(int64_t epoch_seconds);

}  // namespace lodviz::rdf

#endif  // LODVIZ_RDF_TERM_H_
