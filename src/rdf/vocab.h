#ifndef LODVIZ_RDF_VOCAB_H_
#define LODVIZ_RDF_VOCAB_H_

namespace lodviz::rdf::vocab {

// RDF / RDFS core.
inline constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kRdfsLabel[] =
    "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr char kRdfsComment[] =
    "http://www.w3.org/2000/01/rdf-schema#comment";
inline constexpr char kRdfsSubClassOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr char kRdfsClass[] =
    "http://www.w3.org/2000/01/rdf-schema#Class";

// XSD datatypes.
inline constexpr char kXsdInteger[] = "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr char kXsdDecimal[] = "http://www.w3.org/2001/XMLSchema#decimal";
inline constexpr char kXsdDouble[] = "http://www.w3.org/2001/XMLSchema#double";
inline constexpr char kXsdFloat[] = "http://www.w3.org/2001/XMLSchema#float";
inline constexpr char kXsdBoolean[] = "http://www.w3.org/2001/XMLSchema#boolean";
inline constexpr char kXsdString[] = "http://www.w3.org/2001/XMLSchema#string";
inline constexpr char kXsdDateTime[] =
    "http://www.w3.org/2001/XMLSchema#dateTime";
inline constexpr char kXsdDate[] = "http://www.w3.org/2001/XMLSchema#date";

// W3C Data Cube vocabulary (statistical WoD, Section 3.3 of the survey).
inline constexpr char kQbObservation[] =
    "http://purl.org/linked-data/cube#Observation";
inline constexpr char kQbDataSet[] = "http://purl.org/linked-data/cube#dataSet";
inline constexpr char kQbDimension[] =
    "http://purl.org/linked-data/cube#DimensionProperty";
inline constexpr char kQbMeasure[] =
    "http://purl.org/linked-data/cube#MeasureProperty";

// WGS84 geo vocabulary (geo-spatial WoD, Section 3.3).
inline constexpr char kGeoLat[] =
    "http://www.w3.org/2003/01/geo/wgs84_pos#lat";
inline constexpr char kGeoLong[] =
    "http://www.w3.org/2003/01/geo/wgs84_pos#long";

}  // namespace lodviz::rdf::vocab

#endif  // LODVIZ_RDF_VOCAB_H_
