#include "rdf/triple_source.h"

#include <algorithm>

namespace lodviz::rdf {

double TripleSource::EstimateSelectivity(const TriplePattern& pattern) const {
  double total = static_cast<double>(size());
  if (total == 0) return 0.0;
  if (pattern.BoundCount() == 0) return 1.0;
  double est = total;
  if (pattern.p != kInvalidTermId) {
    est = static_cast<double>(PredicateCount(pattern.p));
  }
  // Heuristic per-position shrink factors for bound subject/object.
  if (pattern.s != kInvalidTermId) est /= std::max(1.0, total / 100.0);
  if (pattern.o != kInvalidTermId) est /= std::max(1.0, total / 1000.0);
  return std::min(1.0, est / total);
}

}  // namespace lodviz::rdf
