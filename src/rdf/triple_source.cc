#include "rdf/triple_source.h"

#include <algorithm>
#include <vector>

namespace lodviz::rdf {

namespace {
/// Default ScanRuns chunk size: matches the executor's column-batch
/// granularity so a buffered source still feeds whole batches.
constexpr size_t kRunChunk = 1024;
}  // namespace

void TripleSource::ScanRuns(const TriplePattern& pattern,
                            const ScanRunFn& fn) const {
  std::vector<Triple> buf;
  buf.reserve(kRunChunk);
  bool stopped = false;
  Scan(pattern, [&](const Triple& t) {
    buf.push_back(t);
    if (buf.size() == kRunChunk) {
      if (!fn(buf.data(), buf.size())) {
        stopped = true;
        return false;
      }
      buf.clear();
    }
    return true;
  });
  if (!stopped && !buf.empty()) fn(buf.data(), buf.size());
}

uint64_t TripleSource::PairCount(TermId s, TermId p) const {
  return Count(TriplePattern(s, p, kInvalidTermId));
}

TripleSource::CardinalityEstimate TripleSource::EstimateCardinality(
    const TriplePattern& pattern) const {
  const double total = static_cast<double>(size());
  if (total == 0) return {0.0, true};
  if (pattern.BoundCount() == 0) return {total, true};

  if (pattern.s != kInvalidTermId && pattern.p != kInvalidTermId) {
    // Exact from the (s,p) aggregate; a bound object still shrinks
    // heuristically on top of it.
    double est = static_cast<double>(PairCount(pattern.s, pattern.p));
    if (pattern.o == kInvalidTermId) return {est, true};
    est /= std::max(1.0, total / 1000.0);
    return {est, false};
  }

  double est = total;
  bool exact = false;
  if (pattern.p != kInvalidTermId) {
    est = static_cast<double>(PredicateCount(pattern.p));
    exact = true;  // p-only is the aggregate itself
  }
  // Heuristic per-position shrink factors for bound subject/object.
  if (pattern.s != kInvalidTermId) {
    est /= std::max(1.0, total / 100.0);
    exact = false;
  }
  if (pattern.o != kInvalidTermId) {
    est /= std::max(1.0, total / 1000.0);
    exact = false;
  }
  return {std::min(est, total), exact};
}

double TripleSource::EstimateSelectivity(const TriplePattern& pattern) const {
  const double total = static_cast<double>(size());
  if (total == 0) return 0.0;
  return std::min(1.0, EstimateCardinality(pattern).rows / total);
}

}  // namespace lodviz::rdf
