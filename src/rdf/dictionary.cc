#include "rdf/dictionary.h"

#include <limits>

#include "common/check.h"
#include "rdf/vocab.h"

namespace lodviz::rdf {

DecodedValue DecodeTerm(const Term& term) {
  DecodedValue d;
  if (!term.is_literal()) return d;
  if (term.datatype == vocab::kXsdBoolean) {
    d.kind = DecodedValue::Kind::kBool;
    d.b = term.lexical == "true";
    return d;
  }
  if (term.IsNumericLiteral()) {
    Result<double> v = term.AsDouble();
    if (v.ok()) {
      d.kind = DecodedValue::Kind::kNum;
      d.num = v.ValueOrDie();
    }
    return d;
  }
  if (term.IsTemporalLiteral()) {
    Result<int64_t> v = term.AsEpochSeconds();
    if (v.ok()) {
      d.kind = DecodedValue::Kind::kTime;
      d.epoch = v.ValueOrDie();
    }
    return d;
  }
  return d;
}

Dictionary::Dictionary() {
  terms_.emplace_back();  // sentinel for kInvalidTermId
  decoded_.emplace_back();
}

std::string Dictionary::MakeKey(const Term& term) {
  std::string key;
  key.reserve(term.lexical.size() + term.datatype.size() +
              term.language.size() + 4);
  key += static_cast<char>('0' + static_cast<int>(term.kind));
  key += term.lexical;
  key += '\x01';
  key += term.datatype;
  key += '\x01';
  key += term.language;
  return key;
}

TermId Dictionary::Intern(const Term& term) {
  std::string key = MakeKey(term);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  // The disk indexes pack TermIds as 32-bit halves of Key128 (hi =
  // (s << 32) | p); an id past 2^32 would silently corrupt index order,
  // so dictionary growth past the id space fails loudly here instead.
  LODVIZ_CHECK(terms_.size() <= std::numeric_limits<TermId>::max())
      << "dictionary overflow: term id space (32-bit) exhausted at "
      << terms_.size() << " terms";
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  decoded_.push_back(DecodeTerm(term));
  index_.emplace(std::move(key), id);
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(MakeKey(term));
  if (it == index_.end()) return kInvalidTermId;
  return it->second;
}

Result<Term> Dictionary::GetTerm(TermId id) const {
  if (!Contains(id)) {
    return Status::NotFound("term id " + std::to_string(id) + " not in dictionary");
  }
  return terms_[id];
}

size_t Dictionary::MemoryUsage() const {
  size_t bytes = terms_.capacity() * sizeof(Term) +
                 decoded_.capacity() * sizeof(DecodedValue);
  for (const Term& t : terms_) {
    bytes += t.lexical.capacity() + t.datatype.capacity() + t.language.capacity();
  }
  // unordered_map overhead: key strings + node + bucket pointers (approx).
  bytes += index_.size() * (sizeof(void*) * 4 + sizeof(TermId));
  for (const auto& [k, v] : index_) bytes += k.capacity();
  return bytes;
}

}  // namespace lodviz::rdf
