#include "rdf/ntriples.h"

#include <istream>
#include <ostream>

#include "common/string_util.h"

namespace lodviz::rdf {

namespace {

void SkipSpace(std::string_view s, size_t* pos) {
  while (*pos < s.size() && (s[*pos] == ' ' || s[*pos] == '\t')) ++(*pos);
}

}  // namespace

Result<Term> ParseTerm(std::string_view input, size_t* pos) {
  SkipSpace(input, pos);
  if (*pos >= input.size()) {
    return Status::ParseError("unexpected end of line while reading term");
  }
  char c = input[*pos];
  if (c == '<') {
    size_t end = input.find('>', *pos + 1);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    Term t = Term::Iri(std::string(input.substr(*pos + 1, end - *pos - 1)));
    *pos = end + 1;
    SkipSpace(input, pos);
    return t;
  }
  if (c == '_') {
    if (*pos + 1 >= input.size() || input[*pos + 1] != ':') {
      return Status::ParseError("malformed blank node");
    }
    size_t start = *pos + 2;
    size_t end = start;
    while (end < input.size() && input[end] != ' ' && input[end] != '\t') ++end;
    if (end == start) return Status::ParseError("empty blank node label");
    Term t = Term::Blank(std::string(input.substr(start, end - start)));
    *pos = end;
    SkipSpace(input, pos);
    return t;
  }
  if (c == '"') {
    // Find the closing unescaped quote.
    size_t i = *pos + 1;
    while (i < input.size()) {
      if (input[i] == '\\') {
        i += 2;
        continue;
      }
      if (input[i] == '"') break;
      ++i;
    }
    if (i >= input.size()) return Status::ParseError("unterminated literal");
    LODVIZ_ASSIGN_OR_RETURN(
        std::string value,
        UnescapeNTriplesString(input.substr(*pos + 1, i - *pos - 1)));
    *pos = i + 1;
    Term t = Term::Literal(std::move(value));
    if (*pos < input.size() && input[*pos] == '@') {
      size_t start = *pos + 1;
      size_t end = start;
      while (end < input.size() && input[end] != ' ' && input[end] != '\t') {
        ++end;
      }
      if (end == start) return Status::ParseError("empty language tag");
      t.language = std::string(input.substr(start, end - start));
      *pos = end;
    } else if (*pos + 1 < input.size() && input[*pos] == '^' &&
               input[*pos + 1] == '^') {
      *pos += 2;
      if (*pos >= input.size() || input[*pos] != '<') {
        return Status::ParseError("datatype must be an IRI");
      }
      size_t end = input.find('>', *pos + 1);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      t.datatype = std::string(input.substr(*pos + 1, end - *pos - 1));
      *pos = end + 1;
    }
    SkipSpace(input, pos);
    return t;
  }
  return Status::ParseError(std::string("unexpected character '") + c +
                            "' at start of term");
}

Result<ParsedTriple> ParseNTriplesLine(std::string_view line) {
  std::string_view trimmed = TrimWhitespace(line);
  if (trimmed.empty() || trimmed[0] == '#') {
    return Status::NotFound("blank or comment line");
  }
  size_t pos = 0;
  ParsedTriple pt;
  LODVIZ_ASSIGN_OR_RETURN(pt.subject, ParseTerm(trimmed, &pos));
  if (pt.subject.is_literal()) {
    return Status::ParseError("literal in subject position");
  }
  LODVIZ_ASSIGN_OR_RETURN(pt.predicate, ParseTerm(trimmed, &pos));
  if (!pt.predicate.is_iri()) {
    return Status::ParseError("predicate must be an IRI");
  }
  LODVIZ_ASSIGN_OR_RETURN(pt.object, ParseTerm(trimmed, &pos));
  if (pos >= trimmed.size() || trimmed[pos] != '.') {
    return Status::ParseError("missing terminating '.'");
  }
  return pt;
}

Result<size_t> LoadNTriples(std::istream& in, TripleStore* store, bool strict,
                            size_t* skipped) {
  size_t added = 0;
  size_t line_no = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    Result<ParsedTriple> r = ParseNTriplesLine(line);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kNotFound) continue;  // comment
      if (strict) {
        return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                  r.status().message());
      }
      if (skipped != nullptr) ++(*skipped);
      continue;
    }
    const ParsedTriple& pt = r.ValueOrDie();
    store->Add(pt.subject, pt.predicate, pt.object);
    ++added;
  }
  return added;
}

Result<size_t> LoadNTriplesString(std::string_view document,
                                  TripleStore* store, bool strict) {
  size_t added = 0;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= document.size()) {
    size_t end = document.find('\n', start);
    std::string_view line = document.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start);
    ++line_no;
    if (!line.empty() || end != std::string_view::npos) {
      Result<ParsedTriple> r = ParseNTriplesLine(line);
      if (r.ok()) {
        const ParsedTriple& pt = r.ValueOrDie();
        store->Add(pt.subject, pt.predicate, pt.object);
        ++added;
      } else if (r.status().code() != StatusCode::kNotFound) {
        if (strict) {
          return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                    r.status().message());
        }
      }
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  return added;
}

std::string TripleToNTriples(const TripleStore& store, const Triple& t) {
  const Dictionary& dict = store.dict();
  return dict.term(t.s).ToNTriples() + " " + dict.term(t.p).ToNTriples() +
         " " + dict.term(t.o).ToNTriples() + " .";
}

void WriteNTriples(const TripleStore& store, std::ostream& out) {
  store.Scan(TriplePattern(), [&](const Triple& t) {
    out << TripleToNTriples(store, t) << "\n";
    return true;
  });
}

}  // namespace lodviz::rdf
