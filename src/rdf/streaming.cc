#include "rdf/streaming.h"

#include <algorithm>

namespace lodviz::rdf {

std::vector<ParsedTriple> VectorStreamSource::NextBatch(size_t max_batch) {
  std::vector<ParsedTriple> out;
  size_t n = std::min(max_batch, triples_.size() - next_);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(triples_[next_ + i]);
  next_ += n;
  return out;
}

std::vector<ParsedTriple> GeneratorStreamSource::NextBatch(size_t max_batch) {
  std::vector<ParsedTriple> out;
  if (exhausted_) return out;
  out.reserve(max_batch);
  for (size_t i = 0; i < max_batch; ++i) {
    ParsedTriple pt;
    if (!gen_(&pt)) {
      exhausted_ = true;
      break;
    }
    out.push_back(std::move(pt));
  }
  return out;
}

std::vector<ParsedTriple> EndpointSimulator::NextBatch(size_t max_batch) {
  std::vector<ParsedTriple> out;
  if (Exhausted()) return out;
  ++requests_;
  latency_ms_ += per_request_ms_;
  size_t n = std::min({max_batch, page_size_, dataset_.size() - next_});
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(dataset_[next_ + i]);
  next_ += n;
  return out;
}

size_t IngestStream(StreamSource* source, TripleStore* store,
                    size_t batch_size,
                    const std::function<void(size_t total)>& on_batch) {
  size_t total = 0;
  while (!source->Exhausted()) {
    std::vector<ParsedTriple> batch = source->NextBatch(batch_size);
    if (batch.empty()) break;
    for (const ParsedTriple& pt : batch) {
      store->Add(pt.subject, pt.predicate, pt.object);
    }
    total += batch.size();
    if (on_batch) on_batch(total);
  }
  return total;
}

}  // namespace lodviz::rdf
