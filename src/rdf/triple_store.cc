#include "rdf/triple_store.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace lodviz::rdf {

TripleStore::TripleStore(size_t compaction_threshold)
    : compaction_threshold_(compaction_threshold) {}

TripleStore::TripleStore(TripleStore&& other) noexcept
    LODVIZ_NO_THREAD_SAFETY_ANALYSIS
    : dict_(std::move(other.dict_)),
      compaction_threshold_(other.compaction_threshold_),
      pred_counts_(std::move(other.pred_counts_)) {
  MutexLock lock(&other.mu_);
  spo_ = std::move(other.spo_);
  pos_ = std::move(other.pos_);
  osp_ = std::move(other.osp_);
  pending_ = std::move(other.pending_);
}

TripleStore& TripleStore::operator=(TripleStore&& other) noexcept
    LODVIZ_NO_THREAD_SAFETY_ANALYSIS {
  if (this == &other) return *this;
  dict_ = std::move(other.dict_);
  compaction_threshold_ = other.compaction_threshold_;
  pred_counts_ = std::move(other.pred_counts_);
  MutexLock lock_other(&other.mu_);
  MutexLock lock_this(&mu_);
  spo_ = std::move(other.spo_);
  pos_ = std::move(other.pos_);
  osp_ = std::move(other.osp_);
  pending_ = std::move(other.pending_);
  return *this;
}

Triple TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  Triple t(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
  AddEncoded(t);
  return t;
}

void TripleStore::AddEncoded(const Triple& t) {
  LODVIZ_DCHECK(t.s != kInvalidTermId && t.p != kInvalidTermId &&
                t.o != kInvalidTermId)
      << "triple references the reserved invalid term id";
  ++pred_counts_[t.p];
  MutexLock lock(&mu_);
  pending_.push_back(t);
  MaybeCompactLocked();
}

void TripleStore::MaybeCompactLocked() const {
  if (pending_.size() >= compaction_threshold_) CompactLocked();
}

void TripleStore::Compact() const {
  MutexLock lock(&mu_);
  CompactLocked();
}

void TripleStore::CompactLocked() const {
  if (pending_.empty()) return;
  spo_.insert(spo_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  std::sort(spo_.begin(), spo_.end(), OrderSpo());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), OrderPos());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OrderOsp());
}

namespace {

/// Delivers [lo, hi) as maximal contiguous spans of pattern matches —
/// zero-copy runs straight out of the sorted index (or pending buffer).
bool RunRange(const Triple* lo, const Triple* hi, const TriplePattern& pattern,
              const TripleSource::ScanRunFn& fn) {
  const Triple* it = lo;
  while (it != hi) {
    while (it != hi && !pattern.Matches(*it)) ++it;
    const Triple* start = it;
    while (it != hi && pattern.Matches(*it)) ++it;
    if (it != start && !fn(start, static_cast<size_t>(it - start))) {
      return false;
    }
  }
  return true;
}

}  // namespace

void TripleStore::Scan(const TriplePattern& pattern, const ScanFn& fn) const {
  MutexLock lock(&mu_);
  ScanLocked(pattern, fn);
}

void TripleStore::ScanRuns(const TriplePattern& pattern,
                           const ScanRunFn& fn) const {
  MutexLock lock(&mu_);
  ScanRunsLocked(pattern, fn);
}

void TripleStore::ScanLocked(
    const TriplePattern& pattern,
    const std::function<bool(const Triple&)>& fn) const {
  // Per-triple delivery is the run delivery unrolled, so both entry points
  // share one index-selection path (and provably one order).
  ScanRunsLocked(pattern, [&](const Triple* run, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (!fn(run[i])) return false;
    }
    return true;
  });
}

void TripleStore::ScanRunsLocked(const TriplePattern& pattern,
                                 const ScanRunFn& fn) const {
  bool keep_going = true;
  if (!spo_.empty() || !pending_.empty()) {
    if (pattern.s != kInvalidTermId) {
      // SPO index: range over (s) or (s,p) prefix.
      Triple lo(pattern.s, pattern.p, 0);
      Triple hi(pattern.s,
                pattern.p != kInvalidTermId ? pattern.p : ~TermId(0),
                ~TermId(0));
      auto b = std::lower_bound(spo_.begin(), spo_.end(), lo, OrderSpo());
      auto e = std::upper_bound(spo_.begin(), spo_.end(), hi, OrderSpo());
      keep_going = RunRange(spo_.data() + (b - spo_.begin()),
                            spo_.data() + (e - spo_.begin()), pattern, fn);
    } else if (pattern.p != kInvalidTermId) {
      // POS index: range over (p) or (p,o) prefix.
      Triple lo(0, pattern.p, pattern.o);
      Triple hi(~TermId(0), pattern.p,
                pattern.o != kInvalidTermId ? pattern.o : ~TermId(0));
      auto b = std::lower_bound(pos_.begin(), pos_.end(), lo, OrderPos());
      auto e = std::upper_bound(pos_.begin(), pos_.end(), hi, OrderPos());
      keep_going = RunRange(pos_.data() + (b - pos_.begin()),
                            pos_.data() + (e - pos_.begin()), pattern, fn);
    } else if (pattern.o != kInvalidTermId) {
      // OSP index: range over (o).
      Triple lo(0, 0, pattern.o);
      Triple hi(~TermId(0), ~TermId(0), pattern.o);
      auto b = std::lower_bound(osp_.begin(), osp_.end(), lo, OrderOsp());
      auto e = std::upper_bound(osp_.begin(), osp_.end(), hi, OrderOsp());
      keep_going = RunRange(osp_.data() + (b - osp_.begin()),
                            osp_.data() + (e - osp_.begin()), pattern, fn);
    } else {
      keep_going =
          RunRange(spo_.data(), spo_.data() + spo_.size(), pattern, fn);
    }
  }
  if (!keep_going) return;
  RunRange(pending_.data(), pending_.data() + pending_.size(), pattern, fn);
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Scan(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

uint64_t TripleStore::Count(const TriplePattern& pattern) const {
  uint64_t n = 0;
  Scan(pattern, [&](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

std::vector<TermId> TripleStore::DistinctSubjects() const {
  MutexLock lock(&mu_);
  CompactLocked();
  std::vector<TermId> out;
  TermId last = kInvalidTermId;
  for (const Triple& t : spo_) {
    if (t.s != last) {
      out.push_back(t.s);
      last = t.s;
    }
  }
  return out;
}

std::vector<TermId> TripleStore::DistinctObjects(TermId p) const {
  MutexLock lock(&mu_);
  CompactLocked();
  std::vector<TermId> out;
  TriplePattern pat(kInvalidTermId, p, kInvalidTermId);
  ScanLocked(pat, [&](const Triple& t) {
    out.push_back(t.o);
    return true;
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

size_t TripleStore::MemoryUsage() const {
  MutexLock lock(&mu_);
  return dict_.MemoryUsage() +
         (spo_.capacity() + pos_.capacity() + osp_.capacity() +
          pending_.capacity()) *
             sizeof(Triple);
}

}  // namespace lodviz::rdf
