#ifndef LODVIZ_RDF_TRIPLE_STORE_H_
#define LODVIZ_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace lodviz::rdf {

/// In-memory triple store with three sorted permutation indexes
/// (SPO, POS, OSP) and an unsorted insert buffer for dynamic arrival.
///
/// The survey's "dynamic setting" precludes heavyweight preprocessing:
/// inserts are O(1) appends into a pending buffer; queries merge the sorted
/// indexes with a linear scan of the buffer, and the buffer is folded into
/// the indexes once it exceeds a threshold (amortized incremental indexing).
///
/// Not thread-safe; one store per exploration session.
class TripleStore {
 public:
  /// `compaction_threshold`: pending-buffer size that triggers a fold into
  /// the sorted indexes.
  explicit TripleStore(size_t compaction_threshold = 1 << 16);

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Interns the terms and inserts the triple. Duplicates are removed on
  /// the next compaction.
  Triple Add(const Term& s, const Term& p, const Term& o);

  /// Inserts an already-encoded triple.
  void AddEncoded(const Triple& t);

  /// Total triples (post-dedup count may be lower until compaction).
  size_t size() const { return spo_.size() + pending_.size(); }

  /// Streams every triple matching `pattern` to `fn`; stop early by
  /// returning false from `fn`. Uses the best permutation index.
  void Scan(const TriplePattern& pattern,
            const std::function<bool(const Triple&)>& fn) const;

  /// Materializes all matches.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Number of matches.
  uint64_t Count(const TriplePattern& pattern) const;

  /// Estimated fraction of the store matched by `pattern`, from predicate
  /// statistics; used by the SPARQL join orderer.
  double EstimateSelectivity(const TriplePattern& pattern) const;

  /// Distinct predicates with occurrence counts.
  const std::unordered_map<TermId, uint64_t>& predicate_counts() const {
    return pred_counts_;
  }

  /// Distinct subjects that have at least one triple (from the SPO index +
  /// buffer; deduplicated).
  std::vector<TermId> DistinctSubjects() const;

  /// Distinct objects of triples with predicate `p`.
  std::vector<TermId> DistinctObjects(TermId p) const;

  /// Folds the pending buffer into the sorted indexes and deduplicates.
  void Compact() const;

  /// Approximate heap bytes including the dictionary.
  size_t MemoryUsage() const;

 private:
  void MaybeCompact() const;

  Dictionary dict_;
  size_t compaction_threshold_;

  // Sorted permutation indexes (mutable: compaction is logically const).
  mutable std::vector<Triple> spo_;
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  mutable std::vector<Triple> pending_;

  std::unordered_map<TermId, uint64_t> pred_counts_;
};

}  // namespace lodviz::rdf

#endif  // LODVIZ_RDF_TRIPLE_STORE_H_
