#ifndef LODVIZ_RDF_TRIPLE_STORE_H_
#define LODVIZ_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "rdf/triple_source.h"

namespace lodviz::rdf {

/// In-memory triple store with three sorted permutation indexes
/// (SPO, POS, OSP) and an unsorted insert buffer for dynamic arrival.
/// Implements the TripleSource query contract (see triple_source.h for
/// the canonical Scan early-exit and ordering semantics).
///
/// The survey's "dynamic setting" precludes heavyweight preprocessing:
/// inserts are O(1) appends into a pending buffer; queries merge the sorted
/// indexes with a linear scan of the buffer, and the buffer is folded into
/// the indexes once it exceeds a threshold (amortized incremental indexing).
///
/// Thread-safety: the permutation indexes and pending buffer are guarded by
/// `mu_` (clang -Wthread-safety verified), so concurrent reads — which may
/// trigger a logically-const compaction — are safe. The dictionary and
/// predicate statistics are only written by Add/AddEncoded; writers must
/// still be externally serialized against each other and against readers.
class TripleStore : public TripleSource {
 public:
  /// `compaction_threshold`: pending-buffer size that triggers a fold into
  /// the sorted indexes.
  explicit TripleStore(size_t compaction_threshold = 1 << 16);

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;

  /// Moves lock the source's index mutex; the destination must not be
  /// visible to other threads yet.
  TripleStore(TripleStore&& other) noexcept;
  TripleStore& operator=(TripleStore&& other) noexcept;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const override { return dict_; }

  /// Interns the terms and inserts the triple. Duplicates are removed on
  /// the next compaction.
  Triple Add(const Term& s, const Term& p, const Term& o);

  /// Inserts an already-encoded triple.
  void AddEncoded(const Triple& t);

  /// Total triples (post-dedup count may be lower until compaction).
  [[nodiscard]] uint64_t size() const override LODVIZ_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return spo_.size() + pending_.size();
  }

  /// Streams matches of `pattern` to `fn` under the TripleSource Scan
  /// contract (triple_source.h): `fn` returns false to stop early, must
  /// not reenter this store (the index lock is held during the scan).
  /// Uses the best permutation index.
  void Scan(const TriplePattern& pattern, const ScanFn& fn) const override
      LODVIZ_EXCLUDES(mu_);

  /// Run-granular Scan (TripleSource contract): delivers maximal
  /// contiguous matching spans of the chosen sorted index — zero-copy
  /// pointers into the index — then spans of the pending buffer. The run
  /// concatenation is exactly the Scan sequence.
  void ScanRuns(const TriplePattern& pattern, const ScanRunFn& fn) const
      override LODVIZ_EXCLUDES(mu_);

  /// Materializes all matches.
  [[nodiscard]] std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Number of matches.
  [[nodiscard]] uint64_t Count(const TriplePattern& pattern) const override;

  /// Occurrences of predicate `p` (0 if absent).
  [[nodiscard]] uint64_t PredicateCount(TermId p) const override {
    auto it = pred_counts_.find(p);
    return it == pred_counts_.end() ? 0 : it->second;
  }

  /// Distinct predicates with occurrence counts.
  const std::unordered_map<TermId, uint64_t>& predicate_counts() const {
    return pred_counts_;
  }

  /// Distinct subjects that have at least one triple (from the SPO index +
  /// buffer; deduplicated).
  [[nodiscard]] std::vector<TermId> DistinctSubjects() const
      LODVIZ_EXCLUDES(mu_);

  /// Distinct objects of triples with predicate `p`.
  [[nodiscard]] std::vector<TermId> DistinctObjects(TermId p) const
      LODVIZ_EXCLUDES(mu_);

  /// Folds the pending buffer into the sorted indexes and deduplicates.
  void Compact() const LODVIZ_EXCLUDES(mu_);

  /// Approximate heap bytes including the dictionary.
  [[nodiscard]] size_t MemoryUsage() const LODVIZ_EXCLUDES(mu_);

 private:
  void MaybeCompactLocked() const LODVIZ_REQUIRES(mu_);
  void CompactLocked() const LODVIZ_REQUIRES(mu_);
  void ScanLocked(const TriplePattern& pattern,
                  const std::function<bool(const Triple&)>& fn) const
      LODVIZ_REQUIRES(mu_);
  void ScanRunsLocked(const TriplePattern& pattern, const ScanRunFn& fn) const
      LODVIZ_REQUIRES(mu_);

  /// The dictionary and predicate statistics are written only by
  /// Add/AddEncoded, which the class contract (see the header comment)
  /// requires to be externally serialized against each other and against
  /// readers — so they deliberately sit outside mu_, keeping concurrent
  /// Scan/Count fully lock-free on them.
  // LINT-ALLOW(concurrency.guarded_by): written by externally-serialized Add
  Dictionary dict_;
  // LINT-ALLOW(concurrency.guarded_by): set once in the constructor
  size_t compaction_threshold_;

  /// Guards the sorted permutation indexes and the pending buffer
  /// (mutable: compaction is logically const and may run inside reads).
  mutable Mutex mu_;
  mutable std::vector<Triple> spo_ LODVIZ_GUARDED_BY(mu_);
  mutable std::vector<Triple> pos_ LODVIZ_GUARDED_BY(mu_);
  mutable std::vector<Triple> osp_ LODVIZ_GUARDED_BY(mu_);
  mutable std::vector<Triple> pending_ LODVIZ_GUARDED_BY(mu_);

  // LINT-ALLOW(concurrency.guarded_by): written by externally-serialized Add
  std::unordered_map<TermId, uint64_t> pred_counts_;
};

}  // namespace lodviz::rdf

#endif  // LODVIZ_RDF_TRIPLE_STORE_H_
