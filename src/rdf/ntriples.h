#ifndef LODVIZ_RDF_NTRIPLES_H_
#define LODVIZ_RDF_NTRIPLES_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "common/result.h"
#include "rdf/triple_store.h"

namespace lodviz::rdf {

/// A decoded (subject, predicate, object) statement before dictionary
/// encoding.
struct ParsedTriple {
  Term subject;
  Term predicate;
  Term object;
};

/// Parses one N-Triples line ("<s> <p> <o> ." / literals / blanks).
/// Comments (#...) and blank lines yield kNotFound, which callers skip.
Result<ParsedTriple> ParseNTriplesLine(std::string_view line);

/// Parses a single term at the front of `input`, advancing `*pos` past the
/// term and any following whitespace.
Result<Term> ParseTerm(std::string_view input, size_t* pos);

/// Parses a whole N-Triples document into `store`. Returns the number of
/// triples added; stops at the first malformed line unless `strict` is
/// false, in which case bad lines are skipped and counted in
/// `*skipped` (if non-null).
Result<size_t> LoadNTriples(std::istream& in, TripleStore* store,
                            bool strict = true, size_t* skipped = nullptr);

/// Convenience wrapper over a string document.
Result<size_t> LoadNTriplesString(std::string_view document,
                                  TripleStore* store, bool strict = true);

/// Serializes the full store as N-Triples (sorted SPO order).
void WriteNTriples(const TripleStore& store, std::ostream& out);

/// Serializes one triple using the store's dictionary.
std::string TripleToNTriples(const TripleStore& store, const Triple& t);

}  // namespace lodviz::rdf

#endif  // LODVIZ_RDF_NTRIPLES_H_
