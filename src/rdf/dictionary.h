#ifndef LODVIZ_RDF_DICTIONARY_H_
#define LODVIZ_RDF_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rdf/term.h"

namespace lodviz::rdf {

/// Dense integer id assigned to an interned term. Id 0 is reserved
/// (kInvalidTermId); valid ids start at 1.
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = 0;

/// Parsed value of a literal, cached per TermId at intern time so hot
/// comparison paths (FILTER relations, hash-join key checks) never re-parse
/// lexical forms per row. `kNum`/`kTime` are set only when the literal both
/// claims the type (Term::IsNumericLiteral / IsTemporalLiteral) and parses
/// cleanly; everything else is `kNone` and falls back to the Term-based
/// slow path, so semantics are identical — just computed once.
struct DecodedValue {
  enum class Kind : uint8_t {
    kNone = 0,  // not a decodable literal (or unparseable): use the Term
    kNum,       // numeric literal; `num` holds AsDouble()
    kTime,      // temporal literal; `epoch` holds AsEpochSeconds()
    kBool,      // xsd:boolean literal; `b` holds the EBV
  };
  Kind kind = Kind::kNone;
  double num = 0.0;
  int64_t epoch = 0;
  bool b = false;
};

/// Computes the decoded-value cache entry for `term` (pure function; the
/// dictionary calls it at intern time, plan-time constant folding reuses it
/// for literals that are not interned).
DecodedValue DecodeTerm(const Term& term);

/// Bidirectional term <-> id mapping (dictionary encoding).
///
/// All higher layers (triple store, SPARQL engine, graph, cube) operate on
/// TermIds; strings are touched only at parse/render boundaries. This is the
/// standard RDF-store compression that makes billion-triple handling
/// feasible.
class Dictionary {
 public:
  Dictionary();

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns `term`, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  /// Shorthand interners.
  TermId InternIri(std::string iri) { return Intern(Term::Iri(std::move(iri))); }
  TermId InternLiteral(std::string value, std::string datatype = "") {
    return Intern(Term::Literal(std::move(value), std::move(datatype)));
  }

  /// Looks up an already-interned term; kInvalidTermId if absent.
  [[nodiscard]] TermId Lookup(const Term& term) const;

  /// Returns the term for `id`; error if out of range.
  Result<Term> GetTerm(TermId id) const;

  /// Fast const access for hot paths; id must be valid (checked in debug
  /// builds — an out-of-range id here means index corruption upstream).
  const Term& term(TermId id) const {
    LODVIZ_DCHECK(Contains(id)) << "term id" << id << "not interned";
    return terms_[id];
  }

  /// Decoded-value cache entry for `id`, computed once at intern time.
  /// Same validity contract as term().
  const DecodedValue& decoded(TermId id) const {
    LODVIZ_DCHECK(Contains(id)) << "term id" << id << "not interned";
    return decoded_[id];
  }

  [[nodiscard]] bool Contains(TermId id) const {
    return id >= 1 && id < terms_.size();
  }

  /// Number of interned terms.
  size_t size() const { return terms_.size() - 1; }

  /// Approximate heap footprint in bytes (for memory experiments).
  size_t MemoryUsage() const;

 private:
  static std::string MakeKey(const Term& term);

  std::vector<Term> terms_;  // terms_[0] is an unused sentinel
  std::vector<DecodedValue> decoded_;  // parallel to terms_
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace lodviz::rdf

#endif  // LODVIZ_RDF_DICTIONARY_H_
