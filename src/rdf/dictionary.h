#ifndef LODVIZ_RDF_DICTIONARY_H_
#define LODVIZ_RDF_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rdf/term.h"

namespace lodviz::rdf {

/// Dense integer id assigned to an interned term. Id 0 is reserved
/// (kInvalidTermId); valid ids start at 1.
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = 0;

/// Bidirectional term <-> id mapping (dictionary encoding).
///
/// All higher layers (triple store, SPARQL engine, graph, cube) operate on
/// TermIds; strings are touched only at parse/render boundaries. This is the
/// standard RDF-store compression that makes billion-triple handling
/// feasible.
class Dictionary {
 public:
  Dictionary();

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns `term`, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  /// Shorthand interners.
  TermId InternIri(std::string iri) { return Intern(Term::Iri(std::move(iri))); }
  TermId InternLiteral(std::string value, std::string datatype = "") {
    return Intern(Term::Literal(std::move(value), std::move(datatype)));
  }

  /// Looks up an already-interned term; kInvalidTermId if absent.
  [[nodiscard]] TermId Lookup(const Term& term) const;

  /// Returns the term for `id`; error if out of range.
  Result<Term> GetTerm(TermId id) const;

  /// Fast const access for hot paths; id must be valid (checked in debug
  /// builds — an out-of-range id here means index corruption upstream).
  const Term& term(TermId id) const {
    LODVIZ_DCHECK(Contains(id)) << "term id" << id << "not interned";
    return terms_[id];
  }

  [[nodiscard]] bool Contains(TermId id) const {
    return id >= 1 && id < terms_.size();
  }

  /// Number of interned terms.
  size_t size() const { return terms_.size() - 1; }

  /// Approximate heap footprint in bytes (for memory experiments).
  size_t MemoryUsage() const;

 private:
  static std::string MakeKey(const Term& term);

  std::vector<Term> terms_;  // terms_[0] is an unused sentinel
  std::unordered_map<std::string, TermId> index_;
};

}  // namespace lodviz::rdf

#endif  // LODVIZ_RDF_DICTIONARY_H_
