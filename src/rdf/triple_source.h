#ifndef LODVIZ_RDF_TRIPLE_SOURCE_H_
#define LODVIZ_RDF_TRIPLE_SOURCE_H_

#include <cstdint>
#include <functional>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace lodviz::rdf {

/// Abstract read-only source of dictionary-encoded triples: the storage
/// contract the SPARQL engine (and every other query-shaped consumer) is
/// written against, so the same query runs unchanged over the in-memory
/// `rdf::TripleStore` or the disk-resident `storage::DiskTripleStore`
/// (via `storage::DiskSourceAdapter`) — the survey's Section 4 demand
/// that engines "retrieve data dynamically during runtime" from disk
/// structures instead of being welded to one resident representation.
///
/// ## The Scan contract (canonical; implementations reference this)
///
/// `Scan(pattern, fn)` streams every triple matching `pattern`
/// (kInvalidTermId fields are wildcards) to `fn`:
///
///  - **Early exit:** `fn` returns `true` to continue and `false` to stop
///    the scan immediately; no further triples are delivered after a
///    `false` return.
///  - **Order:** matches arrive in the order of the best index for the
///    pattern's bound positions. All lodviz sources index (s,p,o) and
///    (p,o,s) prefixes identically, so for any pattern the delivery order
///    is a pure function of the data — never of the backend. This is what
///    makes query execution bit-identical across memory and disk.
///  - **Reentrancy:** `fn` must not call back into the same source (an
///    implementation may hold an internal lock for the whole scan).
///  - **Thread-safety:** concurrent `Scan` calls on one source must be
///    safe; implementations serialize internally where the underlying
///    structure is not concurrent (TripleStore's index mutex) or rely on
///    concurrent substructures (the disk adapter scans B-trees over the
///    lock-striped buffer pool, so disjoint scans run in parallel).
class TripleSource {
 public:
  using ScanFn = std::function<bool(const Triple&)>;
  using ScanRunFn = std::function<bool(const Triple* run, size_t n)>;

  virtual ~TripleSource() = default;

  /// Streams matches of `pattern` to `fn` under the contract above.
  virtual void Scan(const TriplePattern& pattern, const ScanFn& fn) const = 0;

  /// Run-granular Scan: delivers matches in contiguous runs whose
  /// concatenation is exactly the Scan sequence (early exit: return false
  /// to stop after the current run). Run pointers are only valid during
  /// the callback. Backends override this to hand out index-resident or
  /// leaf-decoded runs without per-triple callback overhead; the default
  /// buffers Scan output into ~1k-triple chunks.
  virtual void ScanRuns(const TriplePattern& pattern,
                        const ScanRunFn& fn) const;

  /// Number of triples matching `pattern`.
  [[nodiscard]] virtual uint64_t Count(const TriplePattern& pattern) const = 0;

  /// The term dictionary the triple ids refer to.
  virtual const Dictionary& dict() const = 0;

  /// Total triples in the source.
  [[nodiscard]] virtual uint64_t size() const = 0;

  /// Occurrences of predicate `p` (planner statistics).
  [[nodiscard]] virtual uint64_t PredicateCount(TermId p) const = 0;

  /// Exact number of triples with subject `s` and predicate `p` (planner
  /// statistics). The default delegates to Count(), which is exact on
  /// every backend; the disk backend overrides it with an aggregated-index
  /// lookup so no scan happens.
  [[nodiscard]] virtual uint64_t PairCount(TermId s, TermId p) const;

  /// A planner cardinality: how many triples `pattern` matches, and
  /// whether that number is exact (from aggregated statistics) or a
  /// heuristic estimate.
  struct CardinalityEstimate {
    double rows = 0.0;
    bool exact = false;
  };

  /// Cardinality of `pattern` for the SPARQL planner's greedy join
  /// orderer. Non-virtual on purpose: the formula depends only on the
  /// virtual statistics hooks (size, PredicateCount, PairCount), so two
  /// sources holding the same data estimate — and therefore plan —
  /// identically, which keeps execution bit-identical across backends.
  ///
  /// Exact shapes (from aggregated indexes): no bound positions (total),
  /// predicate-only (PredicateCount), and subject+predicate (PairCount).
  /// Everything else applies the legacy heuristic shrink factors and is
  /// flagged estimated.
  [[nodiscard]] CardinalityEstimate EstimateCardinality(
      const TriplePattern& pattern) const;

  /// Estimated fraction of the source matched by `pattern`:
  /// EstimateCardinality(pattern).rows / size().
  [[nodiscard]] double EstimateSelectivity(const TriplePattern& pattern) const;
};

}  // namespace lodviz::rdf

#endif  // LODVIZ_RDF_TRIPLE_SOURCE_H_
