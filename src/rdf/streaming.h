#ifndef LODVIZ_RDF_STREAMING_H_
#define LODVIZ_RDF_STREAMING_H_

#include <functional>
#include <vector>

#include "rdf/ntriples.h"
#include "rdf/triple_store.h"

namespace lodviz::rdf {

/// Pull-based source of triples arriving over time (the survey's "dynamic
/// data" setting: endpoints, APIs, streams). Consumers repeatedly call
/// NextBatch until it returns an empty batch.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  /// Returns up to `max_batch` decoded triples; empty when exhausted.
  virtual std::vector<ParsedTriple> NextBatch(size_t max_batch) = 0;

  /// True once the source can deliver no more triples.
  virtual bool Exhausted() const = 0;
};

/// Source backed by a pre-materialized vector (tests, replay).
class VectorStreamSource : public StreamSource {
 public:
  explicit VectorStreamSource(std::vector<ParsedTriple> triples)
      : triples_(std::move(triples)) {}

  std::vector<ParsedTriple> NextBatch(size_t max_batch) override;
  bool Exhausted() const override { return next_ >= triples_.size(); }

 private:
  std::vector<ParsedTriple> triples_;
  size_t next_ = 0;
};

/// Source backed by a generator function; the function returns false when
/// no more triples exist. Lets workload generators stream without
/// materializing the whole dataset (bounded-memory experiments).
class GeneratorStreamSource : public StreamSource {
 public:
  using Generator = std::function<bool(ParsedTriple*)>;

  explicit GeneratorStreamSource(Generator gen) : gen_(std::move(gen)) {}

  std::vector<ParsedTriple> NextBatch(size_t max_batch) override;
  bool Exhausted() const override { return exhausted_; }

 private:
  Generator gen_;
  bool exhausted_ = false;
};

/// Simulates a remote SPARQL/API endpoint serving a dataset in pages:
/// each NextBatch costs one round trip (counted, and optionally padded with
/// synthetic latency accumulated in `simulated_latency_ms`). This stands in
/// for live WoD endpoints, exercising the same paged-retrieval code path.
class EndpointSimulator : public StreamSource {
 public:
  /// `per_request_ms` models network + server time per page.
  EndpointSimulator(std::vector<ParsedTriple> dataset, size_t page_size,
                    double per_request_ms = 0.0)
      : dataset_(std::move(dataset)),
        page_size_(page_size),
        per_request_ms_(per_request_ms) {}

  std::vector<ParsedTriple> NextBatch(size_t max_batch) override;
  bool Exhausted() const override { return next_ >= dataset_.size(); }

  uint64_t requests_made() const { return requests_; }
  double simulated_latency_ms() const { return latency_ms_; }

 private:
  std::vector<ParsedTriple> dataset_;
  size_t page_size_;
  double per_request_ms_;
  size_t next_ = 0;
  uint64_t requests_ = 0;
  double latency_ms_ = 0.0;
};

/// Drains `source` into `store` in batches of `batch_size`, invoking
/// `on_batch` (if set) after each batch — the hook where incremental
/// indexing / progressive visualization reacts to new data.
size_t IngestStream(StreamSource* source, TripleStore* store,
                    size_t batch_size,
                    const std::function<void(size_t total)>& on_batch = {});

}  // namespace lodviz::rdf

#endif  // LODVIZ_RDF_STREAMING_H_
