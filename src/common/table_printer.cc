#include "common/table_printer.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace lodviz {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  LODVIZ_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace lodviz
