#ifndef LODVIZ_COMMON_RANDOM_H_
#define LODVIZ_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace lodviz {

/// Deterministic, fast pseudo-random generator (xorshift64*).
///
/// Every stochastic component in the library (samplers, generators,
/// layouts) takes an explicit Rng (or seed) so experiments are exactly
/// reproducible. Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL)
      : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, n). n must be > 0.
  ///
  /// Lemire's multiply-shift with rejection: `Next() % n` is biased toward
  /// small residues whenever n does not divide 2^64 (up to ~2x for n just
  /// above 2^63). The widening multiply maps Next() onto [0, n) and the
  /// rejection loop discards the unevenly covered low fringe, so every
  /// value is exactly equally likely. Deterministic for a fixed seed.
  uint64_t Uniform(uint64_t n) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < n) {
      uint64_t threshold = (0 - n) % n;  // 2^64 mod n
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * n;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with given mean and stddev.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

/// Samples ranks in [0, n) with probability proportional to 1/rank^alpha.
///
/// Used to give synthetic Linked Data the heavy-tailed property/degree
/// distributions observed in real WoD sources.
class ZipfSampler {
 public:
  /// n: number of distinct values; alpha: skew (0 = uniform-ish, >1 = heavy).
  ZipfSampler(uint64_t n, double alpha);

  /// Returns a rank in [0, n); rank 0 is the most frequent.
  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  uint64_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cumulative probabilities, size n (capped)
};

}  // namespace lodviz

#endif  // LODVIZ_COMMON_RANDOM_H_
