#ifndef LODVIZ_COMMON_THREAD_ANNOTATIONS_H_
#define LODVIZ_COMMON_THREAD_ANNOTATIONS_H_

/// Clang -Wthread-safety annotation macros (no-ops on other compilers).
/// Annotating which mutex guards which state turns locking discipline into
/// a compile-time check instead of a code-review convention; see
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.

#if defined(__clang__) && !defined(SWIG)
#define LODVIZ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LODVIZ_THREAD_ANNOTATION(x)
#endif

/// Declares that a field is protected by the given mutex.
#define LODVIZ_GUARDED_BY(x) LODVIZ_THREAD_ANNOTATION(guarded_by(x))

/// Declares that the pointee of a pointer field is protected by the mutex.
#define LODVIZ_PT_GUARDED_BY(x) LODVIZ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Declares that a function may only be called while holding the mutex(es).
#define LODVIZ_REQUIRES(...) \
  LODVIZ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Declares that a function must NOT be called while holding the mutex(es)
/// (it acquires them itself).
#define LODVIZ_EXCLUDES(...) \
  LODVIZ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Marks a type as a lockable capability ("mutex").
#define LODVIZ_CAPABILITY(x) LODVIZ_THREAD_ANNOTATION(capability(x))

/// Marks a scoped lock guard type.
#define LODVIZ_SCOPED_CAPABILITY LODVIZ_THREAD_ANNOTATION(scoped_lockable)

/// Function acquires / releases the capability.
#define LODVIZ_ACQUIRE(...) \
  LODVIZ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LODVIZ_RELEASE(...) \
  LODVIZ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Escape hatch: turns the analysis off for one function body.
#define LODVIZ_NO_THREAD_SAFETY_ANALYSIS \
  LODVIZ_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Declares a static lock-acquisition order between mutexes:
/// `Mutex a_ LODVIZ_ACQUIRED_BEFORE(other::Class::b_);` means a_ may be
/// held while b_ is acquired, never the reverse. ACQUIRED_AFTER is the
/// same edge written from the other end.
///
/// These expand to NOTHING for every compiler: clang's acquired_before
/// attribute cannot name private members of other classes, and lodviz's
/// real lock-order edges are all cross-class (e.g. exec::ThreadPool::mu_
/// before obs::MetricRegistry::mu_). They are machine-checked metadata for
/// `lodviz_lint`'s `concurrency.lock_order` rule instead, which parses the
/// annotations, builds the global acquisition graph, and fails the build
/// on any cycle. Targets are written as `Namespace::Class::member` (the
/// `lodviz::` prefix is implied); an unqualified name refers to a member
/// of the same class.
#define LODVIZ_ACQUIRED_BEFORE(...)
#define LODVIZ_ACQUIRED_AFTER(...)

#endif  // LODVIZ_COMMON_THREAD_ANNOTATIONS_H_
