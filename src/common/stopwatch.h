#ifndef LODVIZ_COMMON_STOPWATCH_H_
#define LODVIZ_COMMON_STOPWATCH_H_

#include <chrono>

namespace lodviz {

/// Monotonic wall-clock stopwatch used by the bench harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lodviz

#endif  // LODVIZ_COMMON_STOPWATCH_H_
