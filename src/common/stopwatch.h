#ifndef LODVIZ_COMMON_STOPWATCH_H_
#define LODVIZ_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace lodviz {

/// Monotonic wall-clock stopwatch used by the bench harnesses and the obs
/// subsystem. The single sanctioned clock source in the tree: direct
/// std::chrono::*_clock::now() calls outside src/common/ and src/obs/ are
/// rejected by lodviz_lint (rule no-raw-clock) — use a Stopwatch, a trace
/// span, or Stopwatch::Now() instead so every timing shares one clock.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_(Now()) {}

  /// The shared monotonic clock reading (for code that needs a raw
  /// time_point, e.g. obs span timestamps and deadline arithmetic).
  static Clock::time_point Now() { return Clock::now(); }

  void Reset() { start_ = Now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Now() - start_)
        .count();
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) * 1e-3;
  }

 private:
  Clock::time_point start_;
};

}  // namespace lodviz

#endif  // LODVIZ_COMMON_STOPWATCH_H_
