#ifndef LODVIZ_COMMON_LOGGING_H_
#define LODVIZ_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

// LODVIZ_CHECK / LODVIZ_CHECK_OK / LODVIZ_DCHECK live in common/check.h
// (included here so existing users of the macros keep compiling; the old
// if-based form defined in this header had a dangling-else hazard and only
// accepted Status).
#include "common/check.h"  // IWYU pragma: export

namespace lodviz {
namespace internal_logging {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Accumulates one log line and flushes it (with level prefix) on
/// destruction. `fatal` aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace lodviz

#define LODVIZ_LOG_DEBUG()                                      \
  ::lodviz::internal_logging::LogMessage(                       \
      ::lodviz::internal_logging::LogLevel::kDebug, __FILE__, __LINE__)
#define LODVIZ_LOG_INFO()                                       \
  ::lodviz::internal_logging::LogMessage(                       \
      ::lodviz::internal_logging::LogLevel::kInfo, __FILE__, __LINE__)
#define LODVIZ_LOG_WARN()                                       \
  ::lodviz::internal_logging::LogMessage(                       \
      ::lodviz::internal_logging::LogLevel::kWarning, __FILE__, __LINE__)
#define LODVIZ_LOG_ERROR()                                      \
  ::lodviz::internal_logging::LogMessage(                       \
      ::lodviz::internal_logging::LogLevel::kError, __FILE__, __LINE__)

#endif  // LODVIZ_COMMON_LOGGING_H_
