#ifndef LODVIZ_COMMON_MUTEX_H_
#define LODVIZ_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

namespace lodviz {

/// std::mutex wrapper carrying thread-safety annotations so clang's
/// -Wthread-safety can verify that LODVIZ_GUARDED_BY state is only touched
/// under the right lock. Zero overhead: it is exactly a std::mutex.
class LODVIZ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LODVIZ_ACQUIRE() { mu_.lock(); }
  void Unlock() LODVIZ_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock guard for Mutex (annotated scoped capability).
class LODVIZ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) LODVIZ_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() LODVIZ_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace lodviz

#endif  // LODVIZ_COMMON_MUTEX_H_
