#ifndef LODVIZ_COMMON_MUTEX_H_
#define LODVIZ_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace lodviz {

/// std::mutex wrapper carrying thread-safety annotations so clang's
/// -Wthread-safety can verify that LODVIZ_GUARDED_BY state is only touched
/// under the right lock. Zero overhead: it is exactly a std::mutex.
class LODVIZ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LODVIZ_ACQUIRE() { mu_.lock(); }
  void Unlock() LODVIZ_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock guard for Mutex (annotated scoped capability).
class LODVIZ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) LODVIZ_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() LODVIZ_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable usable with the annotated Mutex (leveldb-style).
/// Wait() atomically releases the mutex the caller holds and reacquires it
/// before returning; the adopt_lock/release dance hands ownership to a
/// std::unique_lock only for the duration of the wait, without the Mutex
/// ever appearing unlocked to the thread-safety analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold *mu; it is held again when Wait returns.
  void Wait(Mutex* mu) LODVIZ_REQUIRES(mu) LODVIZ_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Waits until `pred()` holds; the predicate is evaluated under *mu.
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) LODVIZ_REQUIRES(mu)
      LODVIZ_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock, std::move(pred));
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lodviz

#endif  // LODVIZ_COMMON_MUTEX_H_
