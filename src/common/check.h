#ifndef LODVIZ_COMMON_CHECK_H_
#define LODVIZ_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

#include "common/status.h"

/// Fail-fast contract macros (glog/absl style). Unlike <cassert>, these
/// fire in every build mode: a production exploration engine must crash
/// loudly at the violation site instead of corrupting downstream state.
///
///   LODVIZ_CHECK(idx < size()) << "idx " << idx << " out of range";
///   LODVIZ_CHECK_OK(store.Insert(t));
///   LODVIZ_DCHECK(IsSorted(v));          // debug builds only
///   LODVIZ_ASSIGN_OR_RETURN(auto v, ParseTerm(text));

namespace lodviz::internal {

/// Accumulates the streamed message for a failed check and aborts when the
/// temporary is destroyed at the end of the full expression.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* kind,
               const char* condition) {
    stream_ << file << ":" << line << " " << kind << " failed: " << condition;
  }

  ~CheckFailure() {
    stream_ << "\n";
    std::cerr << stream_.str() << std::flush;
    std::abort();
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Makes the ternary in LODVIZ_CHECK type-check: both branches are void.
/// const&: binds the bare CheckFailure temporary as well as the lvalue
/// returned by a streamed `<< "msg"` chain.
struct CheckVoidify {
  void operator&(const CheckFailure&) {}
};

/// Renders the error carried by a Status or a Result<T> for LODVIZ_CHECK_OK.
template <typename T>
std::string DescribeError(const T& v) {
  if constexpr (requires { v.status(); }) {
    return v.status().ToString();
  } else {
    return v.ToString();
  }
}

}  // namespace lodviz::internal

/// Aborts with file:line and the streamed message unless `condition` holds.
/// Active in every build mode.
#define LODVIZ_CHECK(condition)                                      \
  (condition) ? (void)0                                              \
              : ::lodviz::internal::CheckVoidify() &                 \
                    ::lodviz::internal::CheckFailure(                \
                        __FILE__, __LINE__, "LODVIZ_CHECK", #condition)

/// Debug-only check: compiled away (but still type-checked) under NDEBUG.
#ifdef NDEBUG
#define LODVIZ_DCHECK(condition) LODVIZ_CHECK(true || (condition))
#else
#define LODVIZ_DCHECK(condition) LODVIZ_CHECK(condition)
#endif

/// Aborts unless `expr` (a Status or Result<T>) is OK; prints the error.
#define LODVIZ_CHECK_OK(expr)                                              \
  do {                                                                     \
    const auto& _lodviz_check_ok = (expr);                                 \
    if (!_lodviz_check_ok.ok()) {                                          \
      ::lodviz::internal::CheckFailure(__FILE__, __LINE__,                 \
                                       "LODVIZ_CHECK_OK", #expr)           \
          << ::lodviz::internal::DescribeError(_lodviz_check_ok);          \
    }                                                                      \
  } while (0)

/// Evaluates an expression yielding Result<T>; on error returns the status,
/// otherwise moves the value into `lhs`.
#define LODVIZ_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                 \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).ValueOrDie();

#define LODVIZ_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define LODVIZ_ASSIGN_OR_RETURN_NAME(x, y) LODVIZ_ASSIGN_OR_RETURN_CONCAT(x, y)

#define LODVIZ_ASSIGN_OR_RETURN(lhs, expr) \
  LODVIZ_ASSIGN_OR_RETURN_IMPL(            \
      LODVIZ_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

#endif  // LODVIZ_COMMON_CHECK_H_
