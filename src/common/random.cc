#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lodviz {

double Rng::Normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  have_spare_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

namespace {
// Beyond this many distinct values the CDF table would be too large;
// ranks past the cap share the tail mass uniformly.
constexpr uint64_t kMaxCdfSize = 1u << 20;
}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  LODVIZ_CHECK(n > 0) << "ZipfSampler needs n > 0";
  uint64_t table = std::min(n, kMaxCdfSize);
  cdf_.resize(table);
  double sum = 0.0;
  for (uint64_t i = 0; i < table; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < table; ++i) cdf_[i] /= sum;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  uint64_t rank = static_cast<uint64_t>(it - cdf_.begin());
  if (rank >= cdf_.size()) rank = cdf_.size() - 1;
  if (cdf_.size() < n_ && rank == cdf_.size() - 1) {
    // Spread the capped tail uniformly over the remaining ranks.
    return cdf_.size() - 1 + rng.Uniform(n_ - cdf_.size() + 1);
  }
  return rank;
}

}  // namespace lodviz
