#ifndef LODVIZ_COMMON_TABLE_PRINTER_H_
#define LODVIZ_COMMON_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace lodviz {

/// Renders aligned ASCII tables; used by the bench binaries that
/// regenerate the paper's tables and claim experiments.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Writes the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

  /// Returns the rendered table as a string.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lodviz

#endif  // LODVIZ_COMMON_TABLE_PRINTER_H_
