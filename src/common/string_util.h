#ifndef LODVIZ_COMMON_STRING_UTIL_H_
#define LODVIZ_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace lodviz {

/// Splits `input` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view input, char sep);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// Lower-cases ASCII characters.
std::string AsciiToLower(std::string_view s);

/// Splits text into lower-case alphanumeric tokens (keyword-search
/// tokenizer; everything else is a separator).
std::vector<std::string> TokenizeWords(std::string_view text);

/// Renders a double with `digits` significant fraction digits, trimming
/// trailing zeros ("12.5", "3", "0.25").
std::string FormatDouble(double value, int digits = 4);

/// Renders counts with thousands separators ("1,234,567").
std::string FormatCount(uint64_t n);

}  // namespace lodviz

#endif  // LODVIZ_COMMON_STRING_UTIL_H_
