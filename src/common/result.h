#ifndef LODVIZ_COMMON_RESULT_H_
#define LODVIZ_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace lodviz {

/// Result<T> holds either a value of type T or an error Status,
/// mirroring arrow::Result. An OK Status is not a valid Result payload.
///
///   Result<Dataset> r = LoadDataset(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).ValueOrDie();
///
/// Contract violations (constructing from an OK status, dereferencing an
/// error) abort in every build mode via LODVIZ_CHECK — silently reading a
/// default value past an error is how exploration engines serve wrong
/// answers at scale.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding a value (implicit so functions can
  /// `return value;`).
  Result(T value) : payload_(std::move(value)) {}

  /// Constructs a Result holding an error (implicit so functions can
  /// `return Status::...;`). Must not be OK.
  Result(Status status) : payload_(std::move(status)) {
    LODVIZ_CHECK(!std::get<Status>(payload_).ok())
        << "Result<T> constructed from an OK Status carries no value";
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; returns OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& ValueOrDie() const& {
    LODVIZ_CHECK(ok()) << "Result has no value:" << status().ToString();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    LODVIZ_CHECK(ok()) << "Result has no value:" << status().ToString();
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    LODVIZ_CHECK(ok()) << "Result has no value:" << status().ToString();
    return std::move(std::get<T>(payload_));
  }

  /// Shorthand for ValueOrDie.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const& {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

  /// Rvalue overload: moves the value out instead of copying — the hot-path
  /// form for `SomeLookup(...).ValueOr(default)`.
  T ValueOr(T fallback) && {
    if (ok()) return std::move(std::get<T>(payload_));
    return fallback;
  }

 private:
  std::variant<Status, T> payload_;
};

}  // namespace lodviz

#endif  // LODVIZ_COMMON_RESULT_H_
