#ifndef LODVIZ_COMMON_RESULT_H_
#define LODVIZ_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace lodviz {

/// Result<T> holds either a value of type T or an error Status,
/// mirroring arrow::Result. An OK Status is not a valid Result payload.
///
///   Result<Dataset> r = LoadDataset(path);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit so functions can
  /// `return value;`).
  Result(T value) : payload_(std::move(value)) {}

  /// Constructs a Result holding an error (implicit so functions can
  /// `return Status::...;`). Must not be OK.
  Result(Status status) : payload_(std::move(status)) {
    assert(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; returns OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(payload_));
  }

  /// Shorthand for ValueOrDie.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

 private:
  std::variant<Status, T> payload_;
};

}  // namespace lodviz

/// Evaluates an expression yielding Result<T>; on error returns the status,
/// otherwise moves the value into `lhs`.
#define LODVIZ_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                 \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).ValueOrDie();

#define LODVIZ_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define LODVIZ_ASSIGN_OR_RETURN_NAME(x, y) LODVIZ_ASSIGN_OR_RETURN_CONCAT(x, y)

#define LODVIZ_ASSIGN_OR_RETURN(lhs, expr) \
  LODVIZ_ASSIGN_OR_RETURN_IMPL(            \
      LODVIZ_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

#endif  // LODVIZ_COMMON_RESULT_H_
