#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace lodviz {

std::vector<std::string> SplitString(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> TokenizeWords(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    if (std::isalnum(static_cast<unsigned char>(ch))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

std::string FormatCount(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace lodviz
