#ifndef LODVIZ_COMMON_STATUS_H_
#define LODVIZ_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace lodviz {

/// Error categories used across the library. Modeled after the
/// Status idiom used by Arrow and RocksDB: library code never throws;
/// fallible operations return Status (or Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kIoError,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kCancelled,
};

/// Returns a short human-readable name for a status code ("ParseError", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// The OK status carries no allocation; error statuses carry a message.
/// Typical use:
///
///   Status s = store.Insert(triple);
///   if (!s.ok()) return s;
///
/// [[nodiscard]]: dropping a Status on the floor silently swallows errors;
/// every producer's caller must consume or explicitly void-cast it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace lodviz

/// Propagates an error status out of the current function.
#define LODVIZ_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::lodviz::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

#endif  // LODVIZ_COMMON_STATUS_H_
