#include "exec/thread_pool.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace lodviz::exec {

namespace {

/// Set for the duration of WorkerLoop; lets InThisPool()/ParallelFor detect
/// re-entrant parallelism without any lock.
thread_local const ThreadPool* tl_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads < 1) num_threads = 1;
  obs::MetricRegistry::Global()
      .GetGauge("exec.pool.threads")
      .Set(static_cast<int64_t>(num_threads));
  worker_task_counts_.assign(num_threads, 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  LODVIZ_CHECK(task != nullptr) << "null task submitted to ThreadPool";
  {
    MutexLock lock(&mu_);
    LODVIZ_CHECK(!shutting_down_) << "Submit after ThreadPool::Shutdown";
    queue_.push_back(std::move(task));
    obs::MetricRegistry::Global()
        .GetGauge("exec.pool.queue_depth")
        .Set(static_cast<int64_t>(queue_.size()));
  }
  work_ready_.NotifyOne();
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (shutting_down_ && workers_.empty()) return;
    shutting_down_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  obs::MetricRegistry::Global().GetGauge("exec.pool.threads").Set(0);
}

size_t ThreadPool::num_threads() const {
  MutexLock lock(&mu_);
  return worker_task_counts_.size();
}

uint64_t ThreadPool::tasks_executed() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (uint64_t c : worker_task_counts_) total += c;
  return total;
}

uint64_t ThreadPool::worker_tasks(size_t i) const {
  MutexLock lock(&mu_);
  LODVIZ_CHECK(i < worker_task_counts_.size()) << "worker index" << i;
  return worker_task_counts_[i];
}

bool ThreadPool::InThisPool() const { return tl_worker_pool == this; }

bool ThreadPool::InAnyPool() { return tl_worker_pool != nullptr; }

void ThreadPool::WorkerLoop(size_t worker_index) {
  tl_worker_pool = this;
  // Per-worker counter handles, resolved once per worker thread.
  obs::Counter& pool_tasks =
      obs::MetricRegistry::Global().GetCounter("exec.pool.tasks");
  obs::Counter& my_tasks = obs::MetricRegistry::Global().GetCounter(
      "exec.worker." + std::to_string(worker_index) + ".tasks");
  obs::Gauge& queue_depth =
      obs::MetricRegistry::Global().GetGauge("exec.pool.queue_depth");
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutting_down_ && queue_.empty()) work_ready_.Wait(&mu_);
      // Graceful: drain the queue even when shutting down.
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth.Set(static_cast<int64_t>(queue_.size()));
      ++worker_task_counts_[worker_index];
    }
    pool_tasks.Increment();
    my_tasks.Increment();
    task();
  }
  tl_worker_pool = nullptr;
}

}  // namespace lodviz::exec
