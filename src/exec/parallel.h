#ifndef LODVIZ_EXEC_PARALLEL_H_
#define LODVIZ_EXEC_PARALLEL_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "exec/thread_pool.h"

namespace lodviz::exec {

/// Configured parallelism (>= 1). Initialized from the LODVIZ_THREADS
/// environment variable on first use; unset/invalid falls back to the
/// hardware concurrency. 1 means every Parallel* call below runs inline on
/// the calling thread — bit-identical to the pre-exec serial code paths,
/// which is the determinism contract benches and tests rely on.
size_t ThreadCount();

/// Overrides the thread count (0 = re-read LODVIZ_THREADS/hardware).
/// Destroys and lazily rebuilds the global pool; must not be called while
/// a Parallel* call is in flight.
void SetThreads(size_t n);

/// True when Parallel* calls would run inline: ThreadCount() == 1, or the
/// caller is itself a pool worker (nested parallelism degrades to serial
/// rather than deadlocking the fixed-size pool). Hot paths use this to
/// keep their exact pre-exec serial code when no parallelism is available.
bool SerialMode();

/// True iff the calling thread is a worker of the global pool.
bool InWorkerThread();

/// The process-wide pool, sized to ThreadCount() workers (lazily built).
ThreadPool& GlobalPool();

/// Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks of
/// `grain` indexes. Chunk boundaries depend only on `grain`, never on the
/// thread count, so per-chunk results are reproducible across machines.
/// Blocks until every chunk has finished. In SerialMode() (or when the
/// range fits one chunk) this is exactly `fn(begin, end)`.
///
/// The active trace span of the calling thread is propagated into the
/// workers: spans opened inside `fn` parent under the span that was open
/// at the ParallelFor call site, keeping cross-thread traces hierarchical.
///
/// `fn` must be thread-safe across disjoint chunks and must not submit to
/// or wait on the global pool (nested Parallel* calls degrade to serial).
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Map-reduce over [begin, end): `map(chunk_begin, chunk_end) -> T` per
/// chunk, then `combine(acc, chunk_result)` folds the per-chunk results in
/// ascending chunk order — deterministic for a fixed grain regardless of
/// thread count (Chan-style pairwise combination when T is a mergeable
/// accumulator such as stats::RunningMoments). In SerialMode() this is
/// exactly `map(begin, end)` — one call over the whole range, matching the
/// pre-exec serial accumulation bit for bit.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(size_t begin, size_t end, size_t grain, MapFn map,
                 CombineFn combine) {
  if (end <= begin) return T{};
  if (grain == 0) grain = 1;
  const size_t n = end - begin;
  const size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks <= 1 || SerialMode()) return map(begin, end);
  std::vector<T> partial(num_chunks);
  ParallelFor(0, num_chunks, 1, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      size_t b = begin + c * grain;
      size_t e = std::min(end, b + grain);
      partial[c] = map(b, e);
    }
  });
  T acc = std::move(partial[0]);
  for (size_t c = 1; c < num_chunks; ++c) combine(acc, std::move(partial[c]));
  return acc;
}

/// Parallel sort: 16 fixed chunks sorted concurrently, then pairwise
/// inplace_merge rounds (also concurrent). Sorted output is identical to
/// std::sort up to the order of equivalent elements; in SerialMode() (or
/// below the cutoff) it IS std::sort, preserving the serial tie order.
template <typename RandomIt, typename Compare>
void ParallelSort(RandomIt first, RandomIt last, Compare comp) {
  const size_t n = static_cast<size_t>(last - first);
  constexpr size_t kMinParallelSort = size_t{1} << 15;
  if (n < kMinParallelSort || SerialMode()) {
    std::sort(first, last, comp);
    return;
  }
  constexpr size_t kChunks = 16;
  std::array<size_t, kChunks + 1> bound;
  for (size_t i = 0; i <= kChunks; ++i) bound[i] = i * n / kChunks;
  ParallelFor(0, kChunks, 1, [&](size_t cb, size_t ce) {
    for (size_t c = cb; c < ce; ++c) {
      std::sort(first + bound[c], first + bound[c + 1], comp);
    }
  });
  for (size_t width = 1; width < kChunks; width *= 2) {
    const size_t pairs = kChunks / (2 * width);
    ParallelFor(0, pairs, 1, [&](size_t pb, size_t pe) {
      for (size_t p = pb; p < pe; ++p) {
        size_t lo = bound[2 * width * p];
        size_t mid = bound[2 * width * p + width];
        size_t hi = bound[2 * width * (p + 1)];
        std::inplace_merge(first + lo, first + mid, first + hi, comp);
      }
    });
  }
}

}  // namespace lodviz::exec

#endif  // LODVIZ_EXEC_PARALLEL_H_
