#include "exec/parallel.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/trace.h"

namespace lodviz::exec {

namespace {

size_t DefaultThreads() {
  if (const char* env = std::getenv("LODVIZ_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

/// Thread-count config + lazily built pool. Function-local static so the
/// pool is constructed after (and destroyed before) the obs registry its
/// workers report into.
struct GlobalExec {
  /// SetThreads()/GlobalPool() construct and destroy the pool (whose ctor
  /// registers gauges and whose dtor takes ThreadPool::mu_) while holding
  /// mu, so it orders before both downstream mutexes.
  Mutex mu LODVIZ_ACQUIRED_BEFORE(exec::ThreadPool::mu_)
      LODVIZ_ACQUIRED_BEFORE(obs::MetricRegistry::mu_);
  size_t threads LODVIZ_GUARDED_BY(mu) = 0;  // 0 = uninitialized
  std::unique_ptr<ThreadPool> pool LODVIZ_GUARDED_BY(mu);

  static GlobalExec& Get() {
    static GlobalExec state;
    return state;
  }
};

}  // namespace

size_t ThreadCount() {
  GlobalExec& g = GlobalExec::Get();
  MutexLock lock(&g.mu);
  if (g.threads == 0) g.threads = DefaultThreads();
  return g.threads;
}

void SetThreads(size_t n) {
  GlobalExec& g = GlobalExec::Get();
  MutexLock lock(&g.mu);
  g.pool.reset();  // joins workers; safe because no Parallel* is in flight
  g.threads = n ? n : DefaultThreads();
}

bool InWorkerThread() { return ThreadPool::InAnyPool(); }

bool SerialMode() { return InWorkerThread() || ThreadCount() == 1; }

ThreadPool& GlobalPool() {
  GlobalExec& g = GlobalExec::Get();
  MutexLock lock(&g.mu);
  if (g.threads == 0) g.threads = DefaultThreads();
  if (!g.pool) g.pool = std::make_unique<ThreadPool>(g.threads);
  return *g.pool;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t n = end - begin;
  const size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks <= 1 || SerialMode()) {
    fn(begin, end);
    return;
  }
  ThreadPool& pool = GlobalPool();
  const uint64_t parent_span = obs::CurrentSpanId();
  const size_t num_tasks = std::min(num_chunks, pool.num_threads());

  // Workers claim chunks from a shared cursor; the caller blocks until the
  // last task retires. Chunk boundaries are a pure function of grain, so
  // which worker runs which chunk never affects results.
  std::atomic<size_t> next_chunk{0};
  Mutex done_mu;
  CondVar done_cv;
  size_t tasks_done = 0;
  for (size_t t = 0; t < num_tasks; ++t) {
    pool.Submit([&] {
      obs::SpanParentScope adopt(parent_span);
      for (;;) {
        size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) break;
        size_t b = begin + c * grain;
        size_t e = std::min(end, b + grain);
        fn(b, e);
      }
      // Notify under the lock: the caller may destroy done_cv the moment
      // the predicate is satisfied.
      MutexLock lock(&done_mu);
      ++tasks_done;
      done_cv.NotifyOne();
    });
  }
  MutexLock lock(&done_mu);
  done_cv.Wait(&done_mu, [&] { return tasks_done == num_tasks; });
}

}  // namespace lodviz::exec
