#ifndef LODVIZ_EXEC_THREAD_POOL_H_
#define LODVIZ_EXEC_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lodviz::exec {

/// Fixed-size worker pool with a FIFO work queue. This is the only place
/// in lodviz allowed to construct std::thread (enforced by the
/// `exec.no_raw_thread` lint rule): every parallel hot path goes through
/// ParallelFor/ParallelReduce (parallel.h) on top of this pool, so thread
/// count, shutdown order, and per-worker observability are controlled in
/// one subsystem.
///
/// Tasks must not throw (lodviz is Status-based; a throwing task
/// std::terminates) and must not block on other tasks in the same pool —
/// ParallelFor guards against that by degrading to serial execution when
/// invoked from a worker thread.
///
/// Observability: the pool registers `exec.pool.threads` (gauge),
/// `exec.pool.tasks` (counter), `exec.pool.queue_depth` (gauge), and one
/// `exec.worker.<i>.tasks` counter per worker in the global MetricRegistry.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Graceful shutdown: drains every already-submitted task, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. Must not be called after Shutdown() has started.
  void Submit(std::function<void()> task) LODVIZ_EXCLUDES(mu_);

  /// Stops accepting work, runs all queued tasks to completion, and joins
  /// the workers. Idempotent; called by the destructor.
  void Shutdown() LODVIZ_EXCLUDES(mu_);

  /// Pool size; stable across Shutdown() so post-mortem counter queries
  /// (worker_tasks) can still iterate the workers.
  size_t num_threads() const LODVIZ_EXCLUDES(mu_);

  /// Total tasks executed across all workers.
  uint64_t tasks_executed() const LODVIZ_EXCLUDES(mu_);

  /// Tasks executed by worker `i` (also exported as exec.worker.<i>.tasks).
  uint64_t worker_tasks(size_t i) const LODVIZ_EXCLUDES(mu_);

  /// True iff the calling thread is one of this pool's workers.
  bool InThisPool() const;

  /// True iff the calling thread is a worker of ANY ThreadPool (lock-free
  /// thread-local check; used by SerialMode to detect nested parallelism).
  static bool InAnyPool();

 private:
  void WorkerLoop(size_t worker_index) LODVIZ_EXCLUDES(mu_);

  /// Submit() resolves obs gauges while holding mu_, so the pool mutex
  /// orders strictly before the metric registry's.
  mutable Mutex mu_ LODVIZ_ACQUIRED_BEFORE(obs::MetricRegistry::mu_);
  CondVar work_ready_;
  std::deque<std::function<void()>> queue_ LODVIZ_GUARDED_BY(mu_);
  bool shutting_down_ LODVIZ_GUARDED_BY(mu_) = false;
  /// Written only by the constructor and Shutdown(); Shutdown() must join
  /// outside the lock (workers take mu_ to pop work), and the join itself
  /// is the happens-before edge that makes the final clear() safe.
  // LINT-ALLOW(concurrency.guarded_by): ctor/Shutdown-only; join is the sync
  std::vector<std::thread> workers_;
  /// Task counts, one slot per worker; mirrored into the obs registry.
  std::vector<uint64_t> worker_task_counts_ LODVIZ_GUARDED_BY(mu_);
};

}  // namespace lodviz::exec

#endif  // LODVIZ_EXEC_THREAD_POOL_H_
