#ifndef LODVIZ_OBS_TRACE_H_
#define LODVIZ_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lodviz::obs {

/// One finished span. Spans form a tree per thread: `parent_id` is the id
/// of the span that was open on the same thread when this one started
/// (0 for roots), and `depth` is the nesting level at that moment.
struct SpanRecord {
  std::string name;
  uint64_t id = 0;
  uint64_t parent_id = 0;
  uint32_t depth = 0;
  /// Small dense per-thread id (1, 2, …), not an OS thread id.
  uint64_t thread_id = 0;
  /// Monotonic timestamps (Stopwatch clock), ns since clock epoch.
  int64_t start_ns = 0;
  int64_t end_ns = 0;

  int64_t duration_ns() const { return end_ns - start_ns; }
};

/// Process-wide collector of finished spans. Disabled by default: with
/// tracing off a span costs one relaxed atomic load in the constructor and
/// one branch in the destructor — cheap enough to leave LODVIZ_TRACE_SPAN
/// compiled into hot paths. When enabled, finished spans are appended to a
/// mutex-guarded buffer; export with ChromeTraceJson() (export.h) and open
/// the result in chrome://tracing or https://ui.perfetto.dev.
///
/// The buffer is bounded: once kMaxFinishedSpans spans are retained, new
/// ones are counted in dropped() instead of stored — a span inside a
/// per-row loop (e.g. SPARQL OPTIONAL evaluation) must not grow memory
/// without bound or produce traces no viewer can open.
class Tracer {
 public:
  /// ~250k complete events is comfortably within what chrome://tracing
  /// and Perfetto load; beyond it traces stop being explorable anyway.
  static constexpr size_t kMaxFinishedSpans = 1 << 18;

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Discards all collected spans.
  void Clear() LODVIZ_EXCLUDES(mu_);

  /// Copies the finished spans collected so far (completion order).
  std::vector<SpanRecord> Finished() const LODVIZ_EXCLUDES(mu_);

  size_t size() const LODVIZ_EXCLUDES(mu_);

  /// Spans discarded because the buffer was full (reset by Clear()).
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  friend class ScopedSpan;

  void Append(SpanRecord record) LODVIZ_EXCLUDES(mu_);
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> dropped_{0};
  /// Leaf mutex: Append/TakeFinished never acquire another lock while
  /// holding it, so spans can finish from any context without ordering
  /// constraints.
  mutable Mutex mu_;
  std::vector<SpanRecord> finished_ LODVIZ_GUARDED_BY(mu_);
};

/// RAII span: opens on construction (if tracing is enabled), records on
/// destruction. `name` must outlive the span — pass a string literal.
/// Use via LODVIZ_TRACE_SPAN rather than directly.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return name_ != nullptr; }

 private:
  const char* name_ = nullptr;  // nullptr <=> tracing was off at entry
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint32_t depth_ = 0;
  int64_t start_ns_ = 0;
};

/// Dense id of the calling thread as used in SpanRecord::thread_id.
uint64_t TraceThreadId();

/// Id of the innermost span currently open on the calling thread, or 0 if
/// none (or tracing is off). Capture this before handing work to another
/// thread and re-establish it there with SpanParentScope so cross-thread
/// traces stay hierarchical.
uint64_t CurrentSpanId();

/// RAII adoption of a foreign span as the calling thread's current parent:
/// spans opened while the scope is alive get `parent_id` (typically
/// captured on the submitting thread via CurrentSpanId()) as their parent.
/// A zero parent_id is a no-op, so propagation code needs no branches.
/// Used by exec::ParallelFor workers; see src/exec/parallel.cc.
class SpanParentScope {
 public:
  explicit SpanParentScope(uint64_t parent_id);
  ~SpanParentScope();

  SpanParentScope(const SpanParentScope&) = delete;
  SpanParentScope& operator=(const SpanParentScope&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace lodviz::obs

#define LODVIZ_OBS_CONCAT_INNER(a, b) a##b
#define LODVIZ_OBS_CONCAT(a, b) LODVIZ_OBS_CONCAT_INNER(a, b)

/// Opens a hierarchical trace span covering the rest of the enclosing
/// scope: LODVIZ_TRACE_SPAN("sparql.execute");
#define LODVIZ_TRACE_SPAN(name)                                       \
  ::lodviz::obs::ScopedSpan LODVIZ_OBS_CONCAT(lodviz_trace_span_,     \
                                              __LINE__)(name)

#endif  // LODVIZ_OBS_TRACE_H_
