#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace lodviz::obs {

namespace {

/// Doubles rendered with enough digits to round-trip, but without the
/// noise of full hexfloat (%.17g keeps snapshots diffable).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string PromName(const std::string& name) {
  std::string out = "lodviz_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

namespace {

/// Length of the well-formed UTF-8 sequence starting at s[i], or 0 when
/// s[i] does not start one (stray continuation byte, truncated sequence,
/// or a lead byte UTF-8 forbids: overlong 0xC0/0xC1, > U+10FFFF).
size_t Utf8SequenceLength(const std::string& s, size_t i) {
  const auto b0 = static_cast<unsigned char>(s[i]);
  size_t len;
  if (b0 < 0x80) {
    return 1;
  } else if ((b0 & 0xE0) == 0xC0 && b0 >= 0xC2) {
    len = 2;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
  } else if ((b0 & 0xF8) == 0xF0 && b0 <= 0xF4) {
    len = 4;
  } else {
    return 0;
  }
  if (i + len > s.size()) return 0;
  for (size_t k = 1; k < len; ++k) {
    if ((static_cast<unsigned char>(s[i + k]) & 0xC0) != 0x80) return 0;
  }
  return len;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default: {
        const auto byte = static_cast<unsigned char>(c);
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(byte));
          out += buf;
        } else if (byte < 0x80) {
          out.push_back(c);
        } else {
          // Metric/span names come from arbitrary callers, so they can
          // contain bytes that are not UTF-8 (e.g. latin-1 data or
          // truncated multibyte sequences). Emitting those raw would make
          // the whole document unparseable; pass well-formed UTF-8
          // through untouched and escape every invalid byte as \u00XX
          // (its latin-1 reading) so the output is always valid JSON.
          const size_t len = Utf8SequenceLength(s, i);
          if (len > 0) {
            out.append(s, i, len);
            i += len;
            continue;
          }
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(byte));
          out += buf;
        }
      }
    }
    ++i;
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PromName(name);
    out << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string prom = PromName(name);
    out << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::string prom = PromName(name);
    out << "# TYPE " << prom << " summary\n";
    out << prom << "{quantile=\"0.5\"} " << h.p50 << "\n";
    out << prom << "{quantile=\"0.95\"} " << h.p95 << "\n";
    out << prom << "{quantile=\"0.99\"} " << h.p99 << "\n";
    out << prom << "_sum " << FormatDouble(h.sum) << "\n";
    out << prom << "_count " << h.count << "\n";
  }
  return out.str();
}

std::string PrometheusText() {
  return PrometheusText(MetricRegistry::Global().Snapshot());
}

std::string JsonSnapshot(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(snapshot.counters[i].first)
        << "\":" << snapshot.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(snapshot.gauges[i].first)
        << "\":" << snapshot.gauges[i].second;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, h] = snapshot.histograms[i];
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(name) << "\":{"
        << "\"count\":" << h.count << ",\"sum\":" << FormatDouble(h.sum)
        << ",\"min\":" << h.min << ",\"max\":" << h.max
        << ",\"mean\":" << FormatDouble(h.mean) << ",\"p50\":" << h.p50
        << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99 << "}";
  }
  out << "}}";
  return out.str();
}

std::string JsonSnapshot() {
  return JsonSnapshot(MetricRegistry::Global().Snapshot());
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  int64_t epoch_ns = std::numeric_limits<int64_t>::max();
  for (const SpanRecord& s : spans) epoch_ns = std::min(epoch_ns, s.start_ns);
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) out << ",";
    double ts_us = static_cast<double>(s.start_ns - epoch_ns) / 1e3;
    double dur_us = static_cast<double>(s.duration_ns()) / 1e3;
    out << "{\"name\":\"" << JsonEscape(s.name)
        << "\",\"cat\":\"lodviz\",\"ph\":\"X\",\"ts\":" << FormatDouble(ts_us)
        << ",\"dur\":" << FormatDouble(dur_us) << ",\"pid\":1,\"tid\":"
        << s.thread_id << ",\"args\":{\"id\":" << s.id
        << ",\"parent\":" << s.parent_id << ",\"depth\":" << s.depth << "}}";
  }
  out << "]";
  return out.str();
}

std::string ChromeTraceDocument(const std::vector<SpanRecord>& spans) {
  return "{\"traceEvents\":" + ChromeTraceJson(spans) + "}";
}

}  // namespace lodviz::obs
