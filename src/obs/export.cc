#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace lodviz::obs {

namespace {

/// Doubles rendered with enough digits to round-trip, but without the
/// noise of full hexfloat (%.17g keeps snapshots diffable).
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string PromName(const std::string& name) {
  std::string out = "lodviz_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string prom = PromName(name);
    out << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string prom = PromName(name);
    out << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::string prom = PromName(name);
    out << "# TYPE " << prom << " summary\n";
    out << prom << "{quantile=\"0.5\"} " << h.p50 << "\n";
    out << prom << "{quantile=\"0.95\"} " << h.p95 << "\n";
    out << prom << "{quantile=\"0.99\"} " << h.p99 << "\n";
    out << prom << "_sum " << FormatDouble(h.sum) << "\n";
    out << prom << "_count " << h.count << "\n";
  }
  return out.str();
}

std::string PrometheusText() {
  return PrometheusText(MetricRegistry::Global().Snapshot());
}

std::string JsonSnapshot(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(snapshot.counters[i].first)
        << "\":" << snapshot.counters[i].second;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(snapshot.gauges[i].first)
        << "\":" << snapshot.gauges[i].second;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& [name, h] = snapshot.histograms[i];
    if (i > 0) out << ",";
    out << "\"" << JsonEscape(name) << "\":{"
        << "\"count\":" << h.count << ",\"sum\":" << FormatDouble(h.sum)
        << ",\"min\":" << h.min << ",\"max\":" << h.max
        << ",\"mean\":" << FormatDouble(h.mean) << ",\"p50\":" << h.p50
        << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99 << "}";
  }
  out << "}}";
  return out.str();
}

std::string JsonSnapshot() {
  return JsonSnapshot(MetricRegistry::Global().Snapshot());
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  int64_t epoch_ns = std::numeric_limits<int64_t>::max();
  for (const SpanRecord& s : spans) epoch_ns = std::min(epoch_ns, s.start_ns);
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) out << ",";
    double ts_us = static_cast<double>(s.start_ns - epoch_ns) / 1e3;
    double dur_us = static_cast<double>(s.duration_ns()) / 1e3;
    out << "{\"name\":\"" << JsonEscape(s.name)
        << "\",\"cat\":\"lodviz\",\"ph\":\"X\",\"ts\":" << FormatDouble(ts_us)
        << ",\"dur\":" << FormatDouble(dur_us) << ",\"pid\":1,\"tid\":"
        << s.thread_id << ",\"args\":{\"id\":" << s.id
        << ",\"parent\":" << s.parent_id << ",\"depth\":" << s.depth << "}}";
  }
  out << "]";
  return out.str();
}

std::string ChromeTraceDocument(const std::vector<SpanRecord>& spans) {
  return "{\"traceEvents\":" + ChromeTraceJson(spans) + "}";
}

}  // namespace lodviz::obs
