#ifndef LODVIZ_OBS_EXPORT_H_
#define LODVIZ_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lodviz::obs {

/// Prometheus text exposition (v0.0.4) of a metrics snapshot. Metric names
/// are prefixed with `lodviz_` and dots become underscores; histograms are
/// rendered as summaries with p50/p95/p99 quantile samples plus _count and
/// _sum series.
std::string PrometheusText(const MetricsSnapshot& snapshot);
/// Convenience: snapshot + render the global registry.
std::string PrometheusText();

/// JSON object with "counters", "gauges", and "histograms" members; each
/// histogram carries count/sum/min/max/mean/p50/p95/p99. Stable key order
/// (sorted by metric name), so diffs between snapshots are meaningful.
std::string JsonSnapshot(const MetricsSnapshot& snapshot);
/// Convenience: snapshot + render the global registry.
std::string JsonSnapshot();

/// Chrome trace-event JSON array of complete ("ph":"X") events — load the
/// surrounding {"traceEvents": [...]} object (see ChromeTraceDocument) in
/// chrome://tracing or https://ui.perfetto.dev. Timestamps are relative to
/// the earliest span, in microseconds.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);

/// Full trace document: {"traceEvents": <ChromeTraceJson(...)>}.
std::string ChromeTraceDocument(const std::vector<SpanRecord>& spans);

/// Escapes a string for embedding in a JSON string literal (no quotes
/// added). Exposed because the bench telemetry writer reuses it.
std::string JsonEscape(const std::string& s);

}  // namespace lodviz::obs

#endif  // LODVIZ_OBS_EXPORT_H_
