#include "obs/profile.h"

#include <cstdio>

#include "obs/export.h"

namespace lodviz::obs {

namespace {

/// Compact row-count rendering: estimates keep at most one decimal so
/// `est=2.5` stays readable without printf noise.
std::string RowCount(double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

/// Adaptive wall-time rendering (ns under 10us, us under 10ms, else ms).
std::string WallTime(int64_t ns) {
  char buf[32];
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  }
  return buf;
}

void AppendNode(const OperatorProfile& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += n.op;
  if (!n.label.empty()) *out += " " + n.label;
  if (n.est_rows >= 0.0) *out += "  est=" + RowCount(n.est_rows);
  *out += "  act=" + std::to_string(n.actual_rows);
  *out += "  inv=" + std::to_string(n.invocations);
  *out += "  time=" + WallTime(n.wall_ns);
  if (n.batches > 0) *out += "  batches=" + std::to_string(n.batches);
  if (IsMisestimate(n.est_rows, n.actual_rows)) {
    const double ratio =
        (static_cast<double>(n.actual_rows) + 1.0) / (n.est_rows + 1.0);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f",
                  ratio >= 1.0 ? ratio : 1.0 / ratio);
    *out += std::string("  [misestimate x") + buf + "]";
  }
  *out += "\n";
  for (const OperatorProfile& c : n.children) AppendNode(c, depth + 1, out);
}

}  // namespace

bool IsMisestimate(double est_rows, uint64_t actual_rows) {
  if (est_rows < 0.0) return false;
  const double est = est_rows + 1.0;
  const double act = static_cast<double>(actual_rows) + 1.0;
  return act >= est * kMisestimateFactor || est >= act * kMisestimateFactor;
}

std::string ProfileTreeString(const OperatorProfile& root) {
  std::string out;
  AppendNode(root, 0, &out);
  return out;
}

std::string ProfileNodeJson(const OperatorProfile& node) {
  std::string out = "{\"op\":\"" + JsonEscape(node.op) + "\",\"label\":\"" +
                    JsonEscape(node.label) + "\"";
  if (node.est_rows >= 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", node.est_rows);
    out += std::string(",\"est_rows\":") + buf;
  }
  out += ",\"actual_rows\":" + std::to_string(node.actual_rows);
  out += ",\"invocations\":" + std::to_string(node.invocations);
  out += ",\"wall_ns\":" + std::to_string(node.wall_ns);
  if (node.batches > 0) {
    out += ",\"batches\":" + std::to_string(node.batches);
  }
  out += ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ",";
    out += ProfileNodeJson(node.children[i]);
  }
  out += "]}";
  return out;
}

std::string ProfileJson(const QueryProfile& profile) {
  char fp[32];
  std::snprintf(fp, sizeof(fp), "0x%016llx",
                static_cast<unsigned long long>(profile.fingerprint));
  std::string out = std::string("{\"fingerprint\":\"") + fp + "\"";
  out += ",\"total_ns\":" + std::to_string(profile.total_ns);
  out += ",\"rows_out\":" + std::to_string(profile.rows_out);
  out += ",\"intermediate_rows\":" + std::to_string(profile.intermediate_rows);
  out += std::string(",\"profiled\":") + (profile.profiled ? "true" : "false");
  out += ",\"root\":" + ProfileNodeJson(profile.root) + "}";
  return out;
}

}  // namespace lodviz::obs
