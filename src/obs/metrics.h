#ifndef LODVIZ_OBS_METRICS_H_
#define LODVIZ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lodviz::obs {

/// Monotonically increasing event count. Increments are single relaxed
/// atomic adds, safe from any thread with no locking — cheap enough for
/// per-page and per-row hot paths.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Increments and returns the post-increment value — lets callers batch
  /// secondary bookkeeping on every Nth event with a single atomic op.
  uint64_t IncrementAndGet(uint64_t n = 1) {
    return v_.fetch_add(n, std::memory_order_relaxed) + n;
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time signed level (queue depth, configured capacity, …).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Summary of one histogram at snapshot time. Quantiles are upper bounds
/// of the containing bucket, so p50/p95/p99 over-estimate the true sample
/// quantile by at most one part in 2^kSubBucketBits (~6.25%).
struct HistogramSummary {
  uint64_t count = 0;
  double sum = 0.0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

/// Lock-free log-scaled histogram of non-negative integer samples
/// (latencies in ns/us, row counts, …). HdrHistogram-style bucketing:
/// values below 2^kSubBucketBits are exact; above that, each power-of-two
/// range is split into 2^kSubBucketBits sub-buckets, bounding the relative
/// quantile error at 2^-kSubBucketBits. Record() is a handful of relaxed
/// atomic operations; no allocation, no locking.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr uint64_t kSubBucketCount = 1ULL << kSubBucketBits;
  static constexpr size_t kNumBuckets =
      ((64 - kSubBucketBits) << kSubBucketBits) + kSubBucketCount;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value);
  /// Convenience for callers holding a non-negative double (ms, us, …);
  /// negative values clamp to 0.
  void RecordDouble(double value) {
    Record(value > 0 ? static_cast<uint64_t>(value) : 0);
  }

  /// Folds `other`'s samples into this histogram: afterwards every
  /// quantile/count/sum reads as if both sample streams had been recorded
  /// here directly (bucketing is deterministic per value, so merged
  /// percentiles match single-histogram percentiles exactly — see
  /// ObsTest.HistogramMerge*). Used to combine per-query/per-worker
  /// digests into one summary. Safe against concurrent Record on either
  /// side (relaxed atomics), like every other member.
  void Merge(const Histogram& other);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return static_cast<double>(sum_.load(std::memory_order_relaxed));
  }

  /// Sample value at quantile q in [0, 1] (upper bound of the containing
  /// bucket). Returns 0 on an empty histogram.
  uint64_t Quantile(double q) const;

  HistogramSummary Summarize() const;

  /// Maps a value to its bucket index (exposed for tests).
  static size_t BucketFor(uint64_t value);
  /// Largest value that lands in bucket `index` (the reported quantile
  /// representative).
  static uint64_t BucketUpperBound(size_t index);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ULL};
  std::atomic<uint64_t> max_{0};
};

/// Full registry state at one point in time (see export.h for renderers).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;
};

/// Process-wide, thread-safe name -> metric table. Names follow the
/// `subsystem.name[_unit]` convention (e.g. `storage.buffer_pool.hits`,
/// `sparql.execute_us`). Get* registers on first use and returns a
/// reference that stays valid for the registry's lifetime — hot paths
/// should look a metric up once (function-local static or member pointer)
/// and increment through the cached reference, which is lock-free.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry all built-in instrumentation uses.
  static MetricRegistry& Global();

  Counter& GetCounter(const std::string& name) LODVIZ_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) LODVIZ_EXCLUDES(mu_);
  Histogram& GetHistogram(const std::string& name) LODVIZ_EXCLUDES(mu_);

  /// Copies every metric's current value, sorted by name.
  MetricsSnapshot Snapshot() const LODVIZ_EXCLUDES(mu_);

 private:
  /// Leaf mutex in the process lock order: registry methods never acquire
  /// another lock while holding it, so any subsystem (exec, storage, ...)
  /// may call Get* while holding its own mutex. Declared ACQUIRED_AFTER
  /// at the call sites above it (exec::ThreadPool, exec's global pool
  /// state); obs sits below them in the layering DAG and cannot name them
  /// here.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      LODVIZ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ LODVIZ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      LODVIZ_GUARDED_BY(mu_);
};

}  // namespace lodviz::obs

#endif  // LODVIZ_OBS_METRICS_H_
