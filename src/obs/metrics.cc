#include "obs/metrics.h"

#include <bit>

namespace lodviz::obs {

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = min_.load(std::memory_order_relaxed);
  while (value < prev &&
         !min_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  uint64_t v = other.min_.load(std::memory_order_relaxed);
  uint64_t prev = min_.load(std::memory_order_relaxed);
  while (v < prev &&
         !min_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
  v = other.max_.load(std::memory_order_relaxed);
  prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

size_t Histogram::BucketFor(uint64_t value) {
  if (value < kSubBucketCount) return static_cast<size_t>(value);
  int msb = 63 - std::countl_zero(value);
  int shift = msb - kSubBucketBits;
  uint64_t sub = (value >> shift) & (kSubBucketCount - 1);
  return ((static_cast<size_t>(msb - kSubBucketBits) + 1) << kSubBucketBits) |
         static_cast<size_t>(sub);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  size_t group = index >> kSubBucketBits;
  uint64_t sub = index & (kSubBucketCount - 1);
  if (group == 0) return static_cast<uint64_t>(index);
  int msb = static_cast<int>(group) + kSubBucketBits - 1;
  uint64_t lower = (1ULL << msb) + (sub << (msb - kSubBucketBits));
  uint64_t width = 1ULL << (msb - kSubBucketBits);
  return lower + width - 1;
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      uint64_t upper = BucketUpperBound(i);
      uint64_t hi = max_.load(std::memory_order_relaxed);
      return upper < hi ? upper : hi;
    }
  }
  return max_.load(std::memory_order_relaxed);
}

HistogramSummary Histogram::Summarize() const {
  HistogramSummary s;
  s.count = count();
  s.sum = sum();
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    s.mean = s.sum / static_cast<double>(s.count);
    s.p50 = Quantile(0.50);
    s.p95 = Quantile(0.95);
    s.p99 = Quantile(0.99);
  }
  return s;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry registry;
  return registry;
}

Counter& MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Summarize());
  }
  return snap;
}

}  // namespace lodviz::obs
