#ifndef LODVIZ_OBS_PROFILE_H_
#define LODVIZ_OBS_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace lodviz::obs {

/// Actuals recorded for one operator of a query plan. Nodes form a tree
/// mirroring the plan shape; the executor owns the tree for the duration
/// of one query and accumulates into it from the driving thread only, so
/// the struct needs no synchronization. obs knows nothing about SPARQL:
/// the query layer builds the skeleton (labels, estimates, children) and
/// this layer stores, renders, and serializes it.
struct OperatorProfile {
  /// Operator kind ("scan", "hash-join", "filter", "union", "optional",
  /// "group") — free-form, chosen by the layer that builds the skeleton.
  std::string op;
  /// Human-readable operand description (e.g. the triple-pattern text).
  std::string label;
  /// Planner cardinality estimate; negative when the operator has none.
  double est_rows = -1.0;
  /// Rows actually emitted across all invocations.
  uint64_t actual_rows = 0;
  /// Times the operator ran (for joins: input solutions probed; for
  /// re-evaluated subtrees such as OPTIONAL groups: evaluation count).
  uint64_t invocations = 0;
  /// Wall time attributed to this operator (Stopwatch clock), summed over
  /// invocations. Parent times include child times.
  int64_t wall_ns = 0;
  /// ColumnBatches emitted (batch execution mode only; stays 0 — and is
  /// omitted from renderings — under row-mode execution). Together with
  /// actual_rows this exposes per-operator selectivity: actual_rows /
  /// (batches * kBatchRows) approximates average batch fill.
  uint64_t batches = 0;
  std::vector<OperatorProfile> children;
};

/// Everything recorded about one profiled query execution.
struct QueryProfile {
  /// Normalized-query fingerprint (see sparql/fingerprint.h); 0 if the
  /// producing layer did not compute one.
  uint64_t fingerprint = 0;
  int64_t total_ns = 0;
  uint64_t rows_out = 0;
  uint64_t intermediate_rows = 0;
  /// True when the executor actually recorded actuals into `root`.
  bool profiled = false;
  OperatorProfile root;
};

/// Estimate-vs-actual discrepancy factor flagged by the renderers: an
/// operator whose actual row count is off from the estimate by at least
/// this factor (in either direction) is a misestimate worth surfacing.
inline constexpr double kMisestimateFactor = 4.0;

/// True when `actual` is at least kMisestimateFactor away from `est` in
/// either direction (+1 smoothing so zero estimates/actuals compare
/// sanely). Operators without an estimate (est < 0) never flag.
bool IsMisestimate(double est_rows, uint64_t actual_rows);

/// Accumulates one operator invocation into a profile node. With a null
/// node every member function is a single predictable branch and touches
/// no clock — cheap enough to stay compiled into the executor hot path
/// (see BM_ProfileOperatorOff in bench/micro_substrates.cc).
class OperatorTimer {
 public:
  explicit OperatorTimer(OperatorProfile* node, uint64_t invocations = 1)
      : node_(node) {
    if (node_ != nullptr) {
      node_->invocations += invocations;
      start_ = Stopwatch::Now();
    }
  }

  /// Stops the clock and credits `rows` emitted rows to the node. At most
  /// one Finish per timer; later calls are no-ops.
  void Finish(uint64_t rows) {
    if (node_ != nullptr) {
      node_->wall_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                            Stopwatch::Now() - start_)
                            .count();
      node_->actual_rows += rows;
      node_ = nullptr;
    }
  }

 private:
  OperatorProfile* node_;
  Stopwatch::Clock::time_point start_{};
};

/// Multi-line indented rendering of a profile tree: one line per operator
/// with estimated vs actual rows, invocation count, and wall time;
/// misestimates (IsMisestimate) are flagged with `[misestimate xN]`.
std::string ProfileTreeString(const OperatorProfile& root);

/// JSON object for one profile node (recursive; keys: op, label,
/// est_rows, actual_rows, invocations, wall_ns, children).
std::string ProfileNodeJson(const OperatorProfile& node);

/// JSON object for a whole query profile; the fingerprint is rendered as
/// a hex string so 64-bit values survive JSON number parsing.
std::string ProfileJson(const QueryProfile& profile);

}  // namespace lodviz::obs

#endif  // LODVIZ_OBS_PROFILE_H_
