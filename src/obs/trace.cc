#include "obs/trace.h"

#include <chrono>

#include "common/stopwatch.h"

namespace lodviz::obs {

namespace {

/// Open-span stack of the current thread; index = depth.
struct ActiveSpan {
  uint64_t id;
};

thread_local std::vector<ActiveSpan> tl_span_stack;

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Stopwatch::Now().time_since_epoch())
      .count();
}

}  // namespace

uint64_t CurrentSpanId() {
  return tl_span_stack.empty() ? 0 : tl_span_stack.back().id;
}

SpanParentScope::SpanParentScope(uint64_t parent_id) {
  if (parent_id == 0) return;
  tl_span_stack.push_back({parent_id});
  pushed_ = true;
}

SpanParentScope::~SpanParentScope() {
  if (pushed_ && !tl_span_stack.empty()) tl_span_stack.pop_back();
}

uint64_t TraceThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Clear() {
  MutexLock lock(&mu_);
  finished_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::Finished() const {
  MutexLock lock(&mu_);
  return finished_;
}

size_t Tracer::size() const {
  MutexLock lock(&mu_);
  return finished_.size();
}

void Tracer::Append(SpanRecord record) {
  MutexLock lock(&mu_);
  if (finished_.size() >= kMaxFinishedSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  finished_.push_back(std::move(record));
}

ScopedSpan::ScopedSpan(const char* name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  name_ = name;
  id_ = tracer.NextId();
  parent_id_ = tl_span_stack.empty() ? 0 : tl_span_stack.back().id;
  depth_ = static_cast<uint32_t>(tl_span_stack.size());
  tl_span_stack.push_back({id_});
  start_ns_ = NowNs();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  SpanRecord record;
  record.name = name_;
  record.id = id_;
  record.parent_id = parent_id_;
  record.depth = depth_;
  record.thread_id = TraceThreadId();
  record.start_ns = start_ns_;
  record.end_ns = NowNs();
  // Pop this span (and, defensively, anything opened after it that failed
  // to unwind — cannot happen with RAII scoping, but keeps the stack sane).
  while (!tl_span_stack.empty() && tl_span_stack.back().id != id_) {
    tl_span_stack.pop_back();
  }
  if (!tl_span_stack.empty()) tl_span_stack.pop_back();
  Tracer::Global().Append(std::move(record));
}

}  // namespace lodviz::obs
