#include "obs/query_log.h"

#include <cstdio>

#include "obs/export.h"
#include "obs/metrics.h"

namespace lodviz::obs {

namespace {

std::string FingerprintHex(uint64_t fp) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

std::string EntryJson(const QueryLogEntry& e) {
  char lat[64];
  std::snprintf(lat, sizeof(lat), "%.3f", e.latency_us);
  std::string out = "{\"sequence\":" + std::to_string(e.sequence);
  out += ",\"fingerprint\":\"" + FingerprintHex(e.fingerprint) + "\"";
  out += ",\"query\":\"" + JsonEscape(e.query) + "\"";
  out += std::string(",\"latency_us\":") + lat;
  out += ",\"rows_out\":" + std::to_string(e.rows_out);
  out += ",\"intermediate_rows\":" + std::to_string(e.intermediate_rows);
  out += ",\"profile\":" + ProfileJson(e.profile) + "}";
  return out;
}

}  // namespace

QueryLog::QueryLog(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

QueryLog& QueryLog::Global() {
  static QueryLog log;
  return log;
}

bool QueryLog::Record(QueryLogEntry entry) {
  if (!ShouldRecord(entry.latency_us)) return false;
  if (entry.query.size() > kMaxQueryBytes) entry.query.resize(kMaxQueryBytes);
  MutexLock lock(&mu_);
  // First admission resolves the journal counter through the registry
  // while mu_ is held — the lock-order edge declared on mu_ (QueryLog::mu_
  // before MetricRegistry::mu_). Subsequent admissions increment through
  // the cached reference, lock-free.
  static Counter& admitted_counter =
      MetricRegistry::Global().GetCounter("obs.query_log.admitted");
  admitted_counter.Increment();
  entry.sequence = ++admitted_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[next_] = std::move(entry);
  }
  next_ = (next_ + 1) % capacity_;
  return true;
}

std::vector<QueryLogEntry> QueryLog::Entries() const {
  MutexLock lock(&mu_);
  std::vector<QueryLogEntry> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Full ring: next_ is the oldest slot.
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

size_t QueryLog::size() const {
  MutexLock lock(&mu_);
  return ring_.size();
}

uint64_t QueryLog::total_admitted() const {
  MutexLock lock(&mu_);
  return admitted_;
}

void QueryLog::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  next_ = 0;
  admitted_ = 0;
}

std::string QueryLog::ToJson() const {
  std::vector<QueryLogEntry> entries = Entries();
  std::string out =
      "{\"threshold_us\":" + std::to_string(threshold_micros());
  out += ",\"capacity\":" + std::to_string(capacity_);
  out += ",\"admitted\":" + std::to_string(total_admitted());
  out += ",\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ",";
    out += EntryJson(entries[i]);
  }
  out += "]}";
  return out;
}

}  // namespace lodviz::obs
