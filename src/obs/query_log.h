#ifndef LODVIZ_OBS_QUERY_LOG_H_
#define LODVIZ_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/profile.h"

namespace lodviz::obs {

/// One journaled query: identity (fingerprint + truncated text), cost
/// (latency, row counts), and the per-operator profile summary when the
/// execution was profiled.
struct QueryLogEntry {
  uint64_t fingerprint = 0;
  /// Query text as submitted, truncated to QueryLog::kMaxQueryBytes (AST
  /// level entry points leave it empty).
  std::string query;
  double latency_us = 0.0;
  uint64_t rows_out = 0;
  uint64_t intermediate_rows = 0;
  /// Per-operator actuals; `profile.profiled` is false when the execution
  /// ran with profiling disabled (the journal still captures the totals).
  QueryProfile profile;
  /// Admission number (1, 2, ...) across the journal's lifetime — stable
  /// even after the ring wraps, so consumers can order and dedup entries.
  uint64_t sequence = 0;
};

/// Bounded journal of slow queries: a mutex-guarded ring buffer keeping
/// the most recent `capacity` queries whose latency met the configured
/// threshold. Disabled by default (negative threshold); when disabled the
/// producer-side check is one relaxed atomic load and a branch, so the
/// engine can consult it unconditionally per query.
///
/// Thread-safety: Record/Entries/Clear/ToJson take mu_; the threshold is
/// atomic so ShouldRecord stays lock-free on the query hot path.
class QueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 128;
  /// Journaled query text is truncated to this many bytes so one giant
  /// generated query cannot blow up the journal's bounded footprint.
  static constexpr size_t kMaxQueryBytes = 512;

  QueryLog() : QueryLog(kDefaultCapacity) {}
  explicit QueryLog(size_t capacity);
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// The process-wide journal the SPARQL engine records into.
  static QueryLog& Global();

  /// Queries at least this slow are journaled; negative disables the
  /// journal entirely. Thresholds apply at Record time, so raising the
  /// threshold does not evict already-captured entries.
  void SetThresholdMicros(int64_t us) {
    threshold_us_.store(us, std::memory_order_relaxed);
  }
  [[nodiscard]] int64_t threshold_micros() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const { return threshold_micros() >= 0; }

  /// Lock-free producer-side gate: true iff the journal is enabled and
  /// `latency_us` meets the threshold. Callers use this to skip building
  /// an entry (fingerprint, text copy) for fast queries.
  [[nodiscard]] bool ShouldRecord(double latency_us) const {
    const int64_t t = threshold_micros();
    return t >= 0 && latency_us >= static_cast<double>(t);
  }

  /// Admits `entry` if it passes ShouldRecord(entry.latency_us),
  /// overwriting the oldest entry once full. Returns whether admitted.
  bool Record(QueryLogEntry entry) LODVIZ_EXCLUDES(mu_);

  /// Copies the retained entries, oldest first.
  [[nodiscard]] std::vector<QueryLogEntry> Entries() const
      LODVIZ_EXCLUDES(mu_);

  [[nodiscard]] size_t size() const LODVIZ_EXCLUDES(mu_);
  [[nodiscard]] size_t capacity() const { return capacity_; }

  /// Entries admitted across the journal's lifetime (>= size(); the ring
  /// overwrites, it never refuses).
  [[nodiscard]] uint64_t total_admitted() const LODVIZ_EXCLUDES(mu_);

  /// Drops all retained entries and resets the admission counter. The
  /// threshold is left unchanged.
  void Clear() LODVIZ_EXCLUDES(mu_);

  /// JSON object: {"threshold_us":..,"capacity":..,"admitted":..,
  /// "entries":[...]} with entries oldest first; each entry carries its
  /// fingerprint (hex string), escaped query text, latency, row counts,
  /// and the profile tree (see ProfileJson).
  [[nodiscard]] std::string ToJson() const LODVIZ_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  std::atomic<int64_t> threshold_us_{-1};

  /// Registered in the process lock order: Record's first admission looks
  /// its counters up in the metric registry while holding mu_, so mu_ sits
  /// above obs::MetricRegistry::mu_ in the acquisition graph (checked by
  /// lint's concurrency.lock_order rule).
  mutable Mutex mu_ LODVIZ_ACQUIRED_BEFORE(obs::MetricRegistry::mu_);
  std::vector<QueryLogEntry> ring_ LODVIZ_GUARDED_BY(mu_);
  /// Ring write position (index of the slot the next admission fills).
  size_t next_ LODVIZ_GUARDED_BY(mu_) = 0;
  uint64_t admitted_ LODVIZ_GUARDED_BY(mu_) = 0;
};

}  // namespace lodviz::obs

#endif  // LODVIZ_OBS_QUERY_LOG_H_
