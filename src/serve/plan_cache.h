#ifndef LODVIZ_SERVE_PLAN_CACHE_H_
#define LODVIZ_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "sparql/planner.h"

namespace lodviz::serve {

/// Bounded LRU cache from normalized-query fingerprint to query plan —
/// the serving layer's answer to "parse is cheap, planning walks source
/// statistics per pattern". Keys are the 64-bit fingerprints PR 7 built
/// (sparql/fingerprint.h): whitespace, variable naming, and literal
/// spelling are already erased, so textually different spellings of one
/// query share a single cached plan.
///
/// A 64-bit hash can collide, and serving the wrong plan would mean
/// serving wrong results, so every entry stores the canonical byte key
/// (CanonicalQueryKey) alongside the plan and Lookup compares it on every
/// fingerprint hit: a collision degrades to a counted miss, never to a
/// wrong plan.
///
/// Plans are handed out as shared_ptr-to-const so an entry evicted while
/// another thread executes from it stays alive until that execution
/// drops its reference.
///
/// Thread-safe; all state is guarded by one internal mutex. Counters
/// (serve.plan_cache.hits / .misses / .evictions / .collisions, gauge
/// serve.plan_cache.size) are resolved against the global registry once
/// in the constructor and bumped lock-free, so the cache mutex never
/// nests with the registry's.
class PlanCache {
 public:
  /// `capacity` = max resident plans; 0 disables caching (every Lookup
  /// misses, Insert drops).
  explicit PlanCache(size_t capacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// The plan cached under `fingerprint`, or nullptr. `canonical_key`
  /// must be the CanonicalQueryKey of the query being looked up; a
  /// fingerprint hit whose stored key differs is a collision (counted,
  /// returned as a miss). A true hit moves the entry to LRU front.
  [[nodiscard]] std::shared_ptr<const sparql::QueryPlan> Lookup(
      uint64_t fingerprint, const std::string& canonical_key)
      LODVIZ_EXCLUDES(mu_);

  /// Caches `plan` under `fingerprint`, evicting the least recently used
  /// entry when full. An existing entry for the fingerprint is replaced
  /// (latest wins — also the collision case, where the old key differs).
  void Insert(uint64_t fingerprint, std::string canonical_key,
              sparql::QueryPlan plan) LODVIZ_EXCLUDES(mu_);

  /// Resident entries (for tests; the same value is exported as the
  /// serve.plan_cache.size gauge).
  [[nodiscard]] size_t size() const LODVIZ_EXCLUDES(mu_);

  [[nodiscard]] size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string canonical_key;
    std::shared_ptr<const sparql::QueryPlan> plan;
    /// Position in lru_ (front = most recent).
    std::list<uint64_t>::iterator lru_pos;
  };

  const size_t capacity_;

  /// Resolved once in the constructor; increments are lock-free.
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Counter& collisions_;
  obs::Gauge& size_gauge_;

  mutable Mutex mu_;
  std::list<uint64_t> lru_ LODVIZ_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, Entry> entries_ LODVIZ_GUARDED_BY(mu_);
};

}  // namespace lodviz::serve

#endif  // LODVIZ_SERVE_PLAN_CACHE_H_
