#include "serve/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace lodviz::serve {

namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeadEnd = "\r\n\r\n";

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses "Name: value" header lines between `begin` and the blank line.
Result<std::map<std::string, std::string>> ParseHeaderLines(
    std::string_view head) {
  std::map<std::string, std::string> headers;
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find(kCrlf, pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    pos = eol + kCrlf.size();
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::ParseError("malformed header line");
    }
    headers[ToLower(Trim(line.substr(0, colon)))] =
        std::string(Trim(line.substr(colon + 1)));
  }
  return headers;
}

Result<int64_t> ContentLengthOf(
    const std::map<std::string, std::string>& headers) {
  auto it = headers.find("content-length");
  if (it == headers.end()) return static_cast<int64_t>(0);
  const std::string& text = it->second;
  int64_t n = 0;
  auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), n);
  if (ec != std::errc() || end != text.data() + text.size() || n < 0) {
    return Status::ParseError("invalid Content-Length");
  }
  return n;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Result<size_t> HttpRequestLength(std::string_view buffer) {
  const size_t head_end = buffer.find(kHeadEnd);
  if (head_end == std::string_view::npos) return static_cast<size_t>(0);
  const size_t body_start = head_end + kHeadEnd.size();
  // Skip the request line; headers start after the first CRLF.
  const size_t line_end = buffer.find(kCrlf);
  if (line_end == std::string_view::npos || line_end > head_end) {
    return Status::ParseError("malformed request head");
  }
  LODVIZ_ASSIGN_OR_RETURN(
      const auto headers,
      ParseHeaderLines(
          buffer.substr(line_end + kCrlf.size(), head_end - line_end)));
  LODVIZ_ASSIGN_OR_RETURN(int64_t content_length, ContentLengthOf(headers));
  const size_t total = body_start + static_cast<size_t>(content_length);
  if (buffer.size() < total) return static_cast<size_t>(0);
  return total;
}

Result<std::string> PercentDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= s.size()) {
        return Status::ParseError("truncated percent-escape");
      }
      const int hi = HexDigit(s[i + 1]);
      const int lo = HexDigit(s[i + 2]);
      if (hi < 0 || lo < 0) {
        return Status::ParseError("invalid percent-escape");
      }
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Result<std::map<std::string, std::string>> ParseFormEncoded(
    std::string_view s) {
  std::map<std::string, std::string> params;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t amp = s.find('&', pos);
    if (amp == std::string_view::npos) amp = s.size();
    const std::string_view pair = s.substr(pos, amp - pos);
    pos = amp + 1;
    if (pair.empty()) {
      if (amp == s.size()) break;
      continue;
    }
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      LODVIZ_ASSIGN_OR_RETURN(std::string key, PercentDecode(pair));
      params[std::move(key)] = "";
    } else {
      LODVIZ_ASSIGN_OR_RETURN(std::string key,
                              PercentDecode(pair.substr(0, eq)));
      LODVIZ_ASSIGN_OR_RETURN(std::string value,
                              PercentDecode(pair.substr(eq + 1)));
      params[std::move(key)] = std::move(value);
    }
    if (amp == s.size()) break;
  }
  return params;
}

Result<HttpRequest> ParseHttpRequest(std::string_view raw) {
  const size_t head_end = raw.find(kHeadEnd);
  if (head_end == std::string_view::npos) {
    return Status::ParseError("incomplete request head");
  }
  const size_t line_end = raw.find(kCrlf);
  if (line_end == std::string_view::npos || line_end > head_end) {
    return Status::ParseError("malformed request head");
  }
  const std::string_view request_line = raw.substr(0, line_end);

  // "METHOD SP target SP HTTP/x.y"
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1) {
    return Status::ParseError("malformed request line");
  }
  const std::string_view version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) {
    return Status::ParseError("malformed HTTP version");
  }

  HttpRequest req;
  req.method = std::string(request_line.substr(0, sp1));
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  const std::string_view raw_path =
      qmark == std::string_view::npos ? target : target.substr(0, qmark);
  LODVIZ_ASSIGN_OR_RETURN(req.path, PercentDecode(raw_path));
  if (qmark != std::string_view::npos) {
    LODVIZ_ASSIGN_OR_RETURN(req.params,
                            ParseFormEncoded(target.substr(qmark + 1)));
  }
  LODVIZ_ASSIGN_OR_RETURN(
      req.headers,
      ParseHeaderLines(
          raw.substr(line_end + kCrlf.size(), head_end - line_end)));
  LODVIZ_ASSIGN_OR_RETURN(int64_t content_length,
                          ContentLengthOf(req.headers));
  const size_t body_start = head_end + kHeadEnd.size();
  if (raw.size() < body_start + static_cast<size_t>(content_length)) {
    return Status::ParseError("body shorter than Content-Length");
  }
  req.body =
      std::string(raw.substr(body_start, static_cast<size_t>(content_length)));
  return req;
}

Result<HttpResponse> ParseHttpResponse(std::string_view raw) {
  const size_t head_end = raw.find(kHeadEnd);
  if (head_end == std::string_view::npos) {
    return Status::ParseError("incomplete response head");
  }
  const size_t line_end = raw.find(kCrlf);
  const std::string_view status_line = raw.substr(0, line_end);
  // "HTTP/1.1 NNN Reason"
  const size_t sp1 = status_line.find(' ');
  if (status_line.rfind("HTTP/", 0) != 0 || sp1 == std::string_view::npos) {
    return Status::ParseError("malformed status line");
  }
  const std::string_view after = status_line.substr(sp1 + 1);
  const std::string_view code_text = after.substr(0, after.find(' '));
  HttpResponse resp;
  auto [end, ec] = std::from_chars(
      code_text.data(), code_text.data() + code_text.size(), resp.status);
  if (ec != std::errc() || end != code_text.data() + code_text.size()) {
    return Status::ParseError("malformed status code");
  }
  LODVIZ_ASSIGN_OR_RETURN(
      resp.headers,
      ParseHeaderLines(
          raw.substr(line_end + kCrlf.size(), head_end - line_end)));
  resp.body = std::string(raw.substr(head_end + kHeadEnd.size()));
  return resp;
}

std::string_view HttpReason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

std::string FormatHttpResponse(
    int status, std::string_view content_type, std::string_view body,
    const std::map<std::string, std::string>& extra_headers) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(status);
  out.push_back(' ');
  out += HttpReason(status);
  out += kCrlf;
  out += "Content-Type: ";
  out += content_type;
  out += kCrlf;
  out += "Content-Length: ";
  out += std::to_string(body.size());
  out += kCrlf;
  for (const auto& [name, value] : extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += kCrlf;
  }
  out += "Connection: close";
  out += kHeadEnd;
  out += body;
  return out;
}

}  // namespace lodviz::serve
