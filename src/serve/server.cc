#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/export.h"
#include "serve/http.h"

namespace lodviz::serve {

namespace {

/// Writes all of `bytes` to `fd`, tolerating short writes. MSG_NOSIGNAL
/// turns a peer reset into EPIPE instead of a process-killing SIGPIPE.
void SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer gone; nothing sensible left to do
    }
    sent += static_cast<size_t>(n);
  }
}

void SetRecvTimeout(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Server::Server(Frontend* frontend, exec::ThreadPool* pool, Options options)
    : frontend_(frontend),
      pool_(pool),
      options_(options),
      connections_(obs::MetricRegistry::Global().GetCounter(
          "serve.server.connections")),
      shed_(obs::MetricRegistry::Global().GetCounter("serve.shed")),
      queue_depth_(obs::MetricRegistry::Global().GetGauge(
          "serve.server.queue_depth")) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server already started");
  }
  if (pool_->num_threads() < 2) {
    return Status::InvalidArgument(
        "server needs a pool with at least 2 threads (acceptor + worker)");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return Status::IoError("bind() failed: " + std::string(strerror(errno)));
  }
  if (::listen(fd, 64) < 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) < 0) {
    ::close(fd);
    return Status::IoError("getsockname() failed");
  }
  // Periodic accept timeout so the acceptor re-checks stopping_ even if
  // the shutdown() wake-up were ever missed.
  SetRecvTimeout(fd, 200);

  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  listen_fd_.store(fd, std::memory_order_release);

  // The acceptor plus each worker occupies one pool thread for the
  // server's whole lifetime; leave at least one thread free only if the
  // pool has spares (query execution degrades to serial inside pool
  // workers by design, so saturation is safe, just slower).
  const size_t workers =
      std::min(std::max<size_t>(1, options_.num_workers),
               pool_->num_threads() - 1);
  {
    MutexLock lock(&mu_);
    stopping_ = false;
    active_tasks_ = workers + 1;
  }
  // All tasks are submitted before Start returns — Submit never races a
  // later Shutdown of the pool (the pool contract forbids that).
  pool_->Submit([this] { AcceptLoop(); });
  for (size_t i = 0; i < workers; ++i) {
    pool_->Submit([this] { WorkerLoop(); });
  }
  started_.store(true, std::memory_order_release);
  return Status::OK();
}

void Server::Stop() {
  {
    MutexLock lock(&mu_);
    if (stopping_ && active_tasks_ == 0) return;
    stopping_ = true;
  }
  // Wake the acceptor out of accept(): shutdown() on a listening socket
  // makes blocked accept calls return immediately.
  const int fd = listen_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  work_ready_.NotifyAll();
  {
    MutexLock lock(&mu_);
    while (active_tasks_ != 0) idle_.Wait(&mu_);
    // Workers are gone; close whatever they never got to.
    while (!pending_.empty()) {
      ::close(pending_.front());
      pending_.pop_front();
    }
  }
  queue_depth_.Set(0);
  if (fd >= 0) {
    ::close(fd);
    listen_fd_.store(-1, std::memory_order_release);
  }
  started_.store(false, std::memory_order_release);
}

void Server::TaskExit() {
  MutexLock lock(&mu_);
  --active_tasks_;
  if (active_tasks_ == 0) idle_.NotifyAll();
}

void Server::AcceptLoop() {
  const int listen_fd = listen_fd_.load(std::memory_order_acquire);
  while (true) {
    {
      MutexLock lock(&mu_);
      if (stopping_) break;
    }
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      // Timeout (EAGAIN) re-checks stopping_; EINTR retries; anything
      // else means the listening socket is gone.
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        continue;
      }
      break;
    }
    connections_.Increment();
    SetRecvTimeout(fd, options_.recv_timeout_ms);

    bool shed = false;
    bool drop = false;
    size_t depth = 0;
    {
      MutexLock lock(&mu_);
      if (stopping_) {
        drop = true;
      } else if (pending_.size() >= options_.queue_capacity) {
        shed = true;
      } else {
        pending_.push_back(fd);
        depth = pending_.size();
      }
    }
    if (drop) {
      ::close(fd);
      break;
    }
    if (shed) {
      // Server-level load shed: answer before any parsing so a flood
      // costs one write per refused connection.
      shed_.Increment();
      SendAll(fd, FormatHttpResponse(503, "text/plain",
                                     "server overloaded, try again later\n"));
      ::close(fd);
      continue;
    }
    queue_depth_.Set(static_cast<int64_t>(depth));
    work_ready_.NotifyOne();
  }
  TaskExit();
}

void Server::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && pending_.empty()) work_ready_.Wait(&mu_);
      if (pending_.empty()) break;  // stopping, queue drained
      fd = pending_.front();
      pending_.pop_front();
      queue_depth_.Set(static_cast<int64_t>(pending_.size()));
    }
    ServeConnection(fd);
  }
  TaskExit();
}

void Server::ServeConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  std::string response;
  while (true) {
    Result<size_t> length = HttpRequestLength(buffer);
    if (!length.ok()) {
      response = FormatHttpResponse(400, "text/plain",
                                    length.status().ToString() + "\n");
      break;
    }
    if (length.ValueOrDie() > 0) {
      Result<HttpRequest> req =
          ParseHttpRequest(std::string_view(buffer).substr(
              0, length.ValueOrDie()));
      if (!req.ok()) {
        response = FormatHttpResponse(400, "text/plain",
                                      req.status().ToString() + "\n");
      } else {
        Route(req.ValueOrDie(), &response);
      }
      break;
    }
    if (buffer.size() > options_.max_request_bytes) {
      response =
          FormatHttpResponse(413, "text/plain", "request too large\n");
      break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      // Timeout, reset, or clean close before a full request: drop the
      // connection without a response (there may be nobody to read it).
      ::close(fd);
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  SendAll(fd, response);
  ::close(fd);
}

void Server::Route(const HttpRequest& req, std::string* response_bytes) {
  if (req.path == "/healthz") {
    *response_bytes = FormatHttpResponse(200, "text/plain", "ok\n");
    return;
  }
  if (req.path == "/metrics") {
    if (req.method != "GET") {
      *response_bytes =
          FormatHttpResponse(405, "text/plain", "use GET\n");
      return;
    }
    *response_bytes = FormatHttpResponse(
        200, "text/plain; version=0.0.4", obs::PrometheusText());
    return;
  }
  if (req.path != "/sparql") {
    *response_bytes = FormatHttpResponse(404, "text/plain", "not found\n");
    return;
  }

  // SPARQL protocol: the query text arrives as ?query= (GET), an
  // x-www-form-urlencoded body, or a raw application/sparql-query body.
  QueryRequest qr;
  std::map<std::string, std::string> params = req.params;
  if (req.method == "POST") {
    auto ct = req.headers.find("content-type");
    const std::string content_type =
        ct == req.headers.end() ? "" : ct->second;
    if (content_type.find("application/x-www-form-urlencoded") !=
        std::string::npos) {
      Result<std::map<std::string, std::string>> form =
          ParseFormEncoded(req.body);
      if (!form.ok()) {
        *response_bytes = FormatHttpResponse(
            400, "text/plain", form.status().ToString() + "\n");
        return;
      }
      for (auto& [k, v] : form.ValueOrDie()) params[k] = std::move(v);
    } else if (!req.body.empty()) {
      params["query"] = req.body;
    }
  } else if (req.method != "GET") {
    *response_bytes =
        FormatHttpResponse(405, "text/plain", "use GET or POST\n");
    return;
  }

  auto q = params.find("query");
  if (q == params.end() || q->second.empty()) {
    *response_bytes =
        FormatHttpResponse(400, "text/plain", "missing query parameter\n");
    return;
  }
  qr.query = q->second;

  auto fmt = params.find("format");
  if (fmt != params.end()) {
    qr.format =
        fmt->second == "tsv" ? ResultFormat::kTsv : ResultFormat::kJson;
  } else {
    auto accept = req.headers.find("accept");
    if (accept != req.headers.end() &&
        accept->second.find("tab-separated") != std::string::npos) {
      qr.format = ResultFormat::kTsv;
    }
  }

  const QueryResponse qresp = frontend_->Handle(qr);
  *response_bytes = FormatHttpResponse(
      static_cast<int>(qresp.status), qresp.content_type, qresp.body,
      {{"X-Plan-Cache", qresp.plan_cache_hit ? "hit" : "miss"}});
}

}  // namespace lodviz::serve
