#include "serve/serialize.h"

#include "obs/export.h"
#include "rdf/term.h"

namespace lodviz::serve {

namespace {

/// One term as a SPARQL-results JSON object: {"type":...,"value":...}
/// plus "xml:lang" or "datatype" when the literal carries one.
void AppendTermJson(const rdf::Term& t, std::string* out) {
  out->append("{\"type\":\"");
  switch (t.kind) {
    case rdf::TermKind::kIri:
      out->append("uri");
      break;
    case rdf::TermKind::kLiteral:
      out->append("literal");
      break;
    case rdf::TermKind::kBlank:
      out->append("bnode");
      break;
  }
  out->append("\",\"value\":\"");
  out->append(obs::JsonEscape(t.lexical));
  out->push_back('"');
  if (t.is_literal()) {
    if (!t.language.empty()) {
      out->append(",\"xml:lang\":\"");
      out->append(obs::JsonEscape(t.language));
      out->push_back('"');
    } else if (!t.datatype.empty()) {
      out->append(",\"datatype\":\"");
      out->append(obs::JsonEscape(t.datatype));
      out->push_back('"');
    }
  }
  out->push_back('}');
}

}  // namespace

std::string ResultTableJson(const sparql::ResultTable& table, bool is_ask) {
  std::string out;
  if (is_ask) {
    out = "{\"head\":{},\"boolean\":";
    out += table.ask_result ? "true" : "false";
    out += "}";
    return out;
  }
  out.append("{\"head\":{\"vars\":[");
  bool first = true;
  for (const std::string& v : table.columns()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(obs::JsonEscape(v));
    out.push_back('"');
  }
  out.append("]},\"results\":{\"bindings\":[");
  first = true;
  for (const auto& row : table.rows()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('{');
    bool first_cell = true;
    for (size_t i = 0; i < row.size() && i < table.columns().size(); ++i) {
      if (!row[i].bound) continue;  // unbound cells are simply absent
      if (!first_cell) out.push_back(',');
      first_cell = false;
      out.push_back('"');
      out.append(obs::JsonEscape(table.columns()[i]));
      out.append("\":");
      AppendTermJson(row[i].term, &out);
    }
    out.push_back('}');
  }
  out.append("]}}");
  return out;
}

std::string ResultTableTsv(const sparql::ResultTable& table, bool is_ask) {
  std::string out;
  if (is_ask) {
    return table.ask_result ? "true\n" : "false\n";
  }
  bool first = true;
  for (const std::string& v : table.columns()) {
    if (!first) out.push_back('\t');
    first = false;
    out.push_back('?');
    out.append(v);
  }
  out.push_back('\n');
  for (const auto& row : table.rows()) {
    for (size_t i = 0; i < row.size() && i < table.columns().size(); ++i) {
      if (i > 0) out.push_back('\t');
      if (row[i].bound) out.append(row[i].term.ToNTriples());
    }
    out.push_back('\n');
  }
  return out;
}

std::string TriplesJson(const std::vector<rdf::ParsedTriple>& triples) {
  std::string out = "{\"triples\":[";
  bool first = true;
  for (const rdf::ParsedTriple& t : triples) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"s\":");
    AppendTermJson(t.subject, &out);
    out.append(",\"p\":");
    AppendTermJson(t.predicate, &out);
    out.append(",\"o\":");
    AppendTermJson(t.object, &out);
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

std::string TriplesTsv(const std::vector<rdf::ParsedTriple>& triples) {
  std::string out;
  for (const rdf::ParsedTriple& t : triples) {
    out.append(t.subject.ToNTriples());
    out.push_back('\t');
    out.append(t.predicate.ToNTriples());
    out.push_back('\t');
    out.append(t.object.ToNTriples());
    out.push_back('\n');
  }
  return out;
}

}  // namespace lodviz::serve
