#include "serve/frontend.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "serve/serialize.h"
#include "sparql/ast.h"
#include "sparql/fingerprint.h"
#include "sparql/parser.h"

namespace lodviz::serve {

namespace {

sparql::QueryEngine::Options EngineOptions(const FrontendOptions& o) {
  sparql::QueryEngine::Options e = o.engine;
  e.budget = o.budget;
  return e;
}

const char* ContentTypeFor(ResultFormat format) {
  return format == ResultFormat::kJson ? "application/sparql-results+json"
                                       : "text/tab-separated-values";
}

QueryResponse ErrorResponse(RequestStatus status, std::string message) {
  QueryResponse r;
  r.status = status;
  r.content_type = "text/plain";
  r.body = std::move(message);
  if (r.body.empty() || r.body.back() != '\n') r.body.push_back('\n');
  return r;
}

RequestStatus StatusFor(const Status& s) {
  switch (s.code()) {
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return RequestStatus::kBadRequest;
    case StatusCode::kResourceExhausted:
      return RequestStatus::kBudgetExceeded;
    default:
      return RequestStatus::kInternalError;
  }
}

}  // namespace

Frontend::Frontend(const rdf::TripleSource* source, FrontendOptions options)
    : options_(options),
      engine_(source, EngineOptions(options)),
      cache_(options.plan_cache_capacity),
      requests_(obs::MetricRegistry::Global().GetCounter("serve.requests")),
      shed_(obs::MetricRegistry::Global().GetCounter("serve.shed")),
      parse_errors_(
          obs::MetricRegistry::Global().GetCounter("serve.parse_errors")),
      budget_exceeded_(
          obs::MetricRegistry::Global().GetCounter("serve.budget_exceeded")),
      request_us_(
          obs::MetricRegistry::Global().GetHistogram("serve.request_us")),
      in_flight_gauge_(
          obs::MetricRegistry::Global().GetGauge("serve.in_flight")) {}

QueryResponse Frontend::Handle(const QueryRequest& request) {
  requests_.Increment();
  Stopwatch sw;

  // Admission gate: reserve a slot before doing any work. fetch_add is
  // the reservation, so two racing requests can never both squeeze into
  // the last slot; an over-limit reservation is released immediately.
  const int64_t slot = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= static_cast<int64_t>(options_.max_concurrent)) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.Increment();
    QueryResponse r = ErrorResponse(RequestStatus::kOverloaded,
                                    "server overloaded, try again later");
    r.latency_us = sw.ElapsedMicros();
    request_us_.RecordDouble(r.latency_us);
    return r;
  }
  in_flight_gauge_.Set(slot + 1);
  struct SlotRelease {
    std::atomic<int64_t>& in_flight;
    obs::Gauge& gauge;
    ~SlotRelease() {
      gauge.Set(in_flight.fetch_sub(1, std::memory_order_acq_rel) - 1);
    }
  } release{in_flight_, in_flight_gauge_};

  QueryResponse r;
  Result<sparql::Query> parsed = sparql::ParseQuery(request.query);
  if (!parsed.ok()) {
    parse_errors_.Increment();
    r = ErrorResponse(StatusFor(parsed.status()),
                      parsed.status().ToString());
  } else {
    const sparql::Query& query = parsed.ValueOrDie();
    if (query.form == sparql::QueryForm::kConstruct ||
        query.form == sparql::QueryForm::kDescribe) {
      // Graph forms plan internally per execution; the plan cache only
      // covers the SELECT/ASK hot path.
      Result<std::vector<rdf::ParsedTriple>> triples =
          engine_.ExecuteGraph(query);
      if (!triples.ok()) {
        r = ErrorResponse(StatusFor(triples.status()),
                          triples.status().ToString());
      } else {
        r.status = RequestStatus::kOk;
        r.content_type = ContentTypeFor(request.format);
        r.body = request.format == ResultFormat::kJson
                     ? TriplesJson(triples.ValueOrDie())
                     : TriplesTsv(triples.ValueOrDie());
      }
    } else {
      // SELECT/ASK: fingerprint-keyed plan cache, canonical-bytes
      // verified so a 64-bit collision can only cost a re-plan.
      const std::string key = sparql::CanonicalQueryKey(query);
      const uint64_t fingerprint = sparql::Fnv1a64(key);
      std::shared_ptr<const sparql::QueryPlan> plan =
          cache_.Lookup(fingerprint, key);
      r.plan_cache_hit = plan != nullptr;
      if (plan == nullptr) {
        plan = std::make_shared<const sparql::QueryPlan>(engine_.Plan(query));
        cache_.Insert(fingerprint, key, *plan);
      }
      Result<sparql::ResultTable> table =
          engine_.ExecutePlanned(query, *plan, nullptr, request.query);
      if (!table.ok()) {
        r = ErrorResponse(StatusFor(table.status()),
                          table.status().ToString());
      } else {
        const bool is_ask = query.form == sparql::QueryForm::kAsk;
        r.status = RequestStatus::kOk;
        r.content_type = ContentTypeFor(request.format);
        r.body = request.format == ResultFormat::kJson
                     ? ResultTableJson(table.ValueOrDie(), is_ask)
                     : ResultTableTsv(table.ValueOrDie(), is_ask);
      }
    }
  }
  if (r.status == RequestStatus::kBudgetExceeded) {
    budget_exceeded_.Increment();
  }
  r.latency_us = sw.ElapsedMicros();
  request_us_.RecordDouble(r.latency_us);
  return r;
}

}  // namespace lodviz::serve
