#ifndef LODVIZ_SERVE_SERVER_H_
#define LODVIZ_SERVE_SERVER_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <string>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "serve/frontend.h"

namespace lodviz::serve {

struct HttpRequest;

/// HTTP/1.1 front door for a Frontend, driven entirely by the existing
/// exec::ThreadPool — the server spawns no threads of its own (the
/// exec.no_raw_thread rule holds for serve like everywhere else).
///
/// Concurrency model: Start() submits exactly 1 + num_workers long-lived
/// tasks to the pool — one acceptor that pushes accepted sockets into a
/// bounded queue, and N workers that pop sockets and serve one request
/// each (Connection: close). Everything is submitted up front, so the
/// server never races Submit against a pool shutdown; the pool just needs
/// enough threads to run all of them (Start checks). Queue overflow is
/// the server-level load shed: the acceptor answers 503 immediately and
/// counts it into serve.shed, the same counter the Frontend's admission
/// gate uses, so "refusals under load" is one number.
///
/// Endpoints:
///   GET  /sparql?query=...[&format=json|tsv]   SPARQL protocol query
///   POST /sparql                                query in the body
///        (application/x-www-form-urlencoded query=... or
///         application/sparql-query raw text)
///   GET  /metrics                               Prometheus exposition
///   GET  /healthz                               liveness probe
///
/// Lifecycle contract: Start() before the pool starts shutting down;
/// Stop() (idempotent, also run by the destructor) before the pool is
/// destroyed. The Frontend must outlive the server.
class Server {
 public:
  struct Options {
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back
    /// with port() after Start).
    int port = 0;
    /// Worker tasks serving requests; clamped to pool size - 1 so the
    /// acceptor always has a thread.
    size_t num_workers = 4;
    /// Accepted-but-unserved connection cap; beyond it, 503.
    size_t queue_capacity = 64;
    /// Request size cap; larger requests get 413 and the socket closed.
    size_t max_request_bytes = 1 << 20;
    /// Socket receive timeout — a client that stalls mid-request is
    /// dropped after this long, so slowloris-style dribbling cannot pin
    /// a worker forever.
    int recv_timeout_ms = 5000;
  };

  Server(Frontend* frontend, exec::ThreadPool* pool, Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and submits the acceptor + worker tasks. Errors if
  /// the socket cannot be bound or the pool is too small
  /// (needs >= 2 threads).
  Status Start() LODVIZ_EXCLUDES(mu_);

  /// Stops accepting, drains workers, closes every pending socket, and
  /// returns once all server tasks have exited. Idempotent.
  void Stop() LODVIZ_EXCLUDES(mu_);

  /// The bound port (valid after a successful Start).
  [[nodiscard]] int port() const {
    return port_.load(std::memory_order_acquire);
  }

 private:
  void AcceptLoop() LODVIZ_EXCLUDES(mu_);
  void WorkerLoop() LODVIZ_EXCLUDES(mu_);
  /// Reads one request off `fd`, routes it, writes the response, closes.
  void ServeConnection(int fd);
  void Route(const HttpRequest& req, std::string* response_bytes);
  /// Marks one server task finished; wakes Stop when the last one exits.
  void TaskExit() LODVIZ_EXCLUDES(mu_);

  Frontend* const frontend_;
  exec::ThreadPool* const pool_;
  const Options options_;

  /// Listening socket; written by Start/Stop, read by the acceptor task.
  std::atomic<int> listen_fd_{-1};
  std::atomic<int> port_{0};
  std::atomic<bool> started_{false};

  /// Resolved once in the constructor; bumped lock-free.
  obs::Counter& connections_;
  obs::Counter& shed_;
  obs::Gauge& queue_depth_;

  mutable Mutex mu_;
  /// Workers wait here for sockets; Stop waits on idle_ for task exit.
  CondVar work_ready_;
  CondVar idle_;
  std::deque<int> pending_ LODVIZ_GUARDED_BY(mu_);
  bool stopping_ LODVIZ_GUARDED_BY(mu_) = false;
  /// Acceptor + worker tasks still running.
  size_t active_tasks_ LODVIZ_GUARDED_BY(mu_) = 0;
};

}  // namespace lodviz::serve

#endif  // LODVIZ_SERVE_SERVER_H_
