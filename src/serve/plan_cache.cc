#include "serve/plan_cache.h"

namespace lodviz::serve {

PlanCache::PlanCache(size_t capacity)
    : capacity_(capacity),
      hits_(obs::MetricRegistry::Global().GetCounter(
          "serve.plan_cache.hits")),
      misses_(obs::MetricRegistry::Global().GetCounter(
          "serve.plan_cache.misses")),
      evictions_(obs::MetricRegistry::Global().GetCounter(
          "serve.plan_cache.evictions")),
      collisions_(obs::MetricRegistry::Global().GetCounter(
          "serve.plan_cache.collisions")),
      size_gauge_(obs::MetricRegistry::Global().GetGauge(
          "serve.plan_cache.size")) {}

std::shared_ptr<const sparql::QueryPlan> PlanCache::Lookup(
    uint64_t fingerprint, const std::string& canonical_key) {
  std::shared_ptr<const sparql::QueryPlan> plan;
  bool collision = false;
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
      if (it->second.canonical_key == canonical_key) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        plan = it->second.plan;
      } else {
        collision = true;
      }
    }
  }
  if (plan != nullptr) {
    hits_.Increment();
  } else {
    misses_.Increment();
    if (collision) collisions_.Increment();
  }
  return plan;
}

void PlanCache::Insert(uint64_t fingerprint, std::string canonical_key,
                       sparql::QueryPlan plan) {
  if (capacity_ == 0) return;
  auto shared = std::make_shared<const sparql::QueryPlan>(std::move(plan));
  uint64_t evicted = 0;
  size_t size_after = 0;
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
      // Replace in place (re-plan of a cached query, or a fingerprint
      // collision where latest wins); LRU position refreshes.
      it->second.canonical_key = std::move(canonical_key);
      it->second.plan = std::move(shared);
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      size_after = entries_.size();
    } else {
      if (entries_.size() >= capacity_) {
        const uint64_t victim = lru_.back();
        lru_.pop_back();
        entries_.erase(victim);
        evicted = 1;
      }
      lru_.push_front(fingerprint);
      entries_.emplace(fingerprint,
                       Entry{std::move(canonical_key), std::move(shared),
                             lru_.begin()});
      size_after = entries_.size();
    }
  }
  if (evicted != 0) evictions_.Increment(evicted);
  size_gauge_.Set(static_cast<int64_t>(size_after));
}

size_t PlanCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace lodviz::serve
