#ifndef LODVIZ_SERVE_FRONTEND_H_
#define LODVIZ_SERVE_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "rdf/triple_source.h"
#include "serve/plan_cache.h"
#include "sparql/engine.h"

namespace lodviz::serve {

/// Response body encodings the endpoint can produce (serialize.h).
enum class ResultFormat : uint8_t {
  kJson = 0,
  kTsv = 1,
};

/// Request outcome, expressed as the HTTP status the transport maps it
/// to. Load shedding deliberately gets its own distinct status (503) so
/// clients — and the shed counter asserted by tests — can tell "server
/// refused under load, retry later" apart from "your query is broken"
/// (400) and "your query was too expensive" (504).
enum class RequestStatus : int {
  kOk = 200,
  kBadRequest = 400,
  kInternalError = 500,
  kOverloaded = 503,
  kBudgetExceeded = 504,
};

/// One SPARQL protocol request, transport-independent: the HTTP server
/// (server.h) builds these from sockets; tests and the check-gate driver
/// call Frontend::Handle with them directly.
struct QueryRequest {
  std::string query;
  ResultFormat format = ResultFormat::kJson;
};

struct QueryResponse {
  RequestStatus status = RequestStatus::kOk;
  /// "application/sparql-results+json", "text/tab-separated-values", or
  /// "text/plain" for error bodies.
  std::string content_type;
  std::string body;
  /// Whether the plan came from the cache (exported to clients as the
  /// X-Plan-Cache header; lets the warm-vs-cold check assert its premise).
  bool plan_cache_hit = false;
  double latency_us = 0.0;
};

struct FrontendOptions {
  /// Admission control: requests already executing before a new one is
  /// admitted. At the limit the new request is shed with kOverloaded.
  /// 0 sheds everything (used by tests to pin the refusal path).
  size_t max_concurrent = 16;

  /// Plan cache entries (0 disables the cache).
  size_t plan_cache_capacity = 128;

  /// Per-query execution budget, threaded into the executor; a blown
  /// budget surfaces as kBudgetExceeded. Unlimited by default.
  sparql::ExecBudget budget;

  /// Engine knobs for the serving engine (join ordering etc.); `profile`
  /// and `budget` inside it are overridden by this struct's fields.
  sparql::QueryEngine::Options engine;
};

/// The serving layer's front door: parse → admission gate → plan-cache
/// lookup (fingerprint-keyed, canonical-bytes verified) → budgeted
/// execution → serialization, with every step counted in the obs
/// registry (serve.requests, serve.shed, serve.parse_errors,
/// serve.budget_exceeded, serve.request_us, plus the serve.plan_cache.*
/// family from PlanCache).
///
/// Thread-safety: Handle is safe to call from any number of threads
/// concurrently — the engine is immutable, the plan cache locks
/// internally, and the admission gate is one atomic. The frontend only
/// reads the TripleSource, which must stay alive and unmodified while
/// requests are in flight (same contract as QueryEngine itself).
class Frontend {
 public:
  Frontend(const rdf::TripleSource* source, FrontendOptions options);

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Serves one request start-to-finish on the calling thread.
  QueryResponse Handle(const QueryRequest& request);

  /// The engine requests execute on — the check-gate driver runs its
  /// direct (no front door) executions against this exact engine so the
  /// bit-identical assertion compares like with like.
  [[nodiscard]] const sparql::QueryEngine& engine() const { return engine_; }

  [[nodiscard]] const PlanCache& plan_cache() const { return cache_; }
  [[nodiscard]] const FrontendOptions& options() const { return options_; }

 private:
  const FrontendOptions options_;
  const sparql::QueryEngine engine_;
  PlanCache cache_;

  /// Requests currently executing; the admission gate.
  std::atomic<int64_t> in_flight_{0};

  /// Resolved once; incremented lock-free on the request path.
  obs::Counter& requests_;
  obs::Counter& shed_;
  obs::Counter& parse_errors_;
  obs::Counter& budget_exceeded_;
  obs::Histogram& request_us_;
  obs::Gauge& in_flight_gauge_;
};

}  // namespace lodviz::serve

#endif  // LODVIZ_SERVE_FRONTEND_H_
