#ifndef LODVIZ_SERVE_HTTP_H_
#define LODVIZ_SERVE_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <string_view>

#include "common/result.h"

namespace lodviz::serve {

/// Minimal HTTP/1.1 parsing and formatting for the SPARQL endpoint —
/// pure functions over byte buffers, no sockets, so every parse path is
/// unit-testable with hostile input. The server (server.h) owns the I/O.
///
/// Deliberately supported subset: one request per connection
/// (Connection: close), Content-Length bodies (no chunked encoding), no
/// continuation lines. Anything outside the subset is a clean ParseError,
/// never a crash — this parser faces the network.

struct HttpRequest {
  std::string method;
  /// Request target before the '?', percent-decoded ("/sparql").
  std::string path;
  /// Decoded key=value pairs from the query string; later keys win.
  std::map<std::string, std::string> params;
  /// Header names lowercased; values trimmed of surrounding whitespace.
  std::map<std::string, std::string> headers;
  std::string body;
};

struct HttpResponse {
  int status = 0;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// How much of `buffer` one complete request occupies: 0 if more bytes
/// are needed (headers unterminated, or body shorter than
/// Content-Length), the total byte count once complete, or ParseError
/// for a malformed head / unparseable or negative Content-Length.
Result<size_t> HttpRequestLength(std::string_view buffer);

/// Parses one complete request (exactly the bytes HttpRequestLength
/// measured). Malformed request lines, headers, or percent-escapes are
/// ParseError.
Result<HttpRequest> ParseHttpRequest(std::string_view raw);

/// Parses a complete response (status line + headers + body-to-EOF, the
/// Connection: close framing this server emits). For the test client.
Result<HttpResponse> ParseHttpResponse(std::string_view raw);

/// Formats a response with Content-Length and Connection: close.
/// `extra_headers` lines are emitted verbatim (each "Name: value", no
/// CRLF).
[[nodiscard]] std::string FormatHttpResponse(
    int status, std::string_view content_type, std::string_view body,
    const std::map<std::string, std::string>& extra_headers = {});

/// Percent-decoding per RFC 3986, with '+' as space (query strings).
/// Invalid escapes are ParseError, not garbage bytes.
Result<std::string> PercentDecode(std::string_view s);

/// Decodes an application/x-www-form-urlencoded or URL query string into
/// key → value (later duplicates win). Keys without '=' map to "".
Result<std::map<std::string, std::string>> ParseFormEncoded(
    std::string_view s);

/// Standard reason phrase for the status codes this server emits.
[[nodiscard]] std::string_view HttpReason(int status);

}  // namespace lodviz::serve

#endif  // LODVIZ_SERVE_HTTP_H_
