#ifndef LODVIZ_SERVE_SERIALIZE_H_
#define LODVIZ_SERVE_SERIALIZE_H_

#include <string>
#include <vector>

#include "rdf/ntriples.h"
#include "sparql/result_table.h"

namespace lodviz::serve {

/// Result serialization for the SPARQL protocol endpoint. Two formats:
///
///  - JSON, following the shape of the SPARQL 1.1 Query Results JSON
///    format: {"head":{"vars":[...]},"results":{"bindings":[...]}} with
///    per-cell {"type","value"[,"xml:lang"|"datatype"]} objects, and
///    {"head":{},"boolean":b} for ASK. String escaping goes through the
///    UTF-8-hardened obs::JsonEscape, so hostile literals (control bytes,
///    truncated UTF-8 sequences) cannot break the envelope.
///  - TSV, one header row of ?var names then one term per cell in
///    canonical N-Triples spelling (empty cell = unbound), matching what
///    the check-gate differ and spreadsheet imports want.
///
/// Serialization is deterministic: the same ResultTable always renders to
/// the same bytes, which is what lets scripts/check.sh gate 6 assert
/// bit-identical cold-cache / warm-cache / direct-execution responses.

/// SPARQL-results-style JSON for a SELECT/ASK result.
[[nodiscard]] std::string ResultTableJson(const sparql::ResultTable& table,
                                          bool is_ask);

/// Tab-separated values for a SELECT result ("true"/"false" for ASK).
[[nodiscard]] std::string ResultTableTsv(const sparql::ResultTable& table,
                                         bool is_ask);

/// JSON for CONSTRUCT/DESCRIBE output: {"triples":[{"s":...},...]} with
/// the same per-term objects as SELECT bindings.
[[nodiscard]] std::string TriplesJson(
    const std::vector<rdf::ParsedTriple>& triples);

/// N-Triples-style TSV for CONSTRUCT/DESCRIBE output: "s\tp\to" per line.
[[nodiscard]] std::string TriplesTsv(
    const std::vector<rdf::ParsedTriple>& triples);

}  // namespace lodviz::serve

#endif  // LODVIZ_SERVE_SERIALIZE_H_
