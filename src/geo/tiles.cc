#include "geo/tiles.h"

#include <algorithm>
#include <cmath>

namespace lodviz::geo {

TileKey TileScheme::TileForPoint(uint8_t zoom, const Point& p) const {
  uint32_t n = 1u << zoom;
  double fx = (p.x - domain_.min_x) / std::max(1e-300, domain_.Width());
  double fy = (p.y - domain_.min_y) / std::max(1e-300, domain_.Height());
  auto clamp_tile = [n](double f) {
    int64_t t = static_cast<int64_t>(f * n);
    return static_cast<uint32_t>(std::clamp<int64_t>(t, 0, n - 1));
  };
  return {zoom, clamp_tile(fx), clamp_tile(fy)};
}

std::vector<TileKey> TileScheme::TilesInRect(uint8_t zoom,
                                             const Rect& window) const {
  TileKey lo = TileForPoint(zoom, {window.min_x, window.min_y});
  TileKey hi = TileForPoint(zoom, {window.max_x, window.max_y});
  std::vector<TileKey> out;
  for (uint32_t x = lo.x; x <= hi.x; ++x) {
    for (uint32_t y = lo.y; y <= hi.y; ++y) {
      out.push_back({zoom, x, y});
    }
  }
  return out;
}

Rect TileScheme::TileBounds(const TileKey& key) const {
  uint32_t n = 1u << key.zoom;
  double w = domain_.Width() / n;
  double h = domain_.Height() / n;
  double x0 = domain_.min_x + w * key.x;
  double y0 = domain_.min_y + h * key.y;
  return {x0, y0, x0 + w, y0 + h};
}

void TileIndex::Add(uint64_t id, const Point& p) {
  for (uint8_t z = 0; z <= max_zoom_; ++z) {
    tiles_[scheme_.TileForPoint(z, p)].push_back(id);
  }
}

const std::vector<uint64_t>& TileIndex::Items(const TileKey& key) const {
  auto it = tiles_.find(key);
  if (it == tiles_.end()) return empty_;
  return it->second;
}

uint64_t TileIndex::Count(const TileKey& key) const {
  return Items(key).size();
}

size_t TileIndex::MemoryUsage() const {
  size_t bytes = tiles_.size() * (sizeof(TileKey) + sizeof(void*) * 4);
  for (const auto& [k, v] : tiles_) bytes += v.capacity() * sizeof(uint64_t);
  return bytes;
}

}  // namespace lodviz::geo
