#include "geo/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"

namespace lodviz::geo {

RTree::RTree(size_t max_entries)
    : max_entries_(std::max<size_t>(4, max_entries)),
      min_entries_(std::max<size_t>(2, max_entries_ / 2)) {}

int32_t RTree::NewNode(bool leaf) {
  nodes_.emplace_back();
  nodes_.back().leaf = leaf;
  return static_cast<int32_t>(nodes_.size() - 1);
}

void RTree::RecomputeRect(int32_t node_id) {
  Node& n = nodes_[node_id];
  n.rect = Rect::Empty();
  if (n.leaf) {
    for (const Entry& e : n.entries) n.rect.Expand(e.rect);
  } else {
    for (int32_t c : n.children) n.rect.Expand(nodes_[c].rect);
  }
}

int RTree::ChooseChild(const Node& node, const Rect& rect) const {
  int best = 0;
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.children.size(); ++i) {
    const Rect& r = nodes_[node.children[i]].rect;
    double enlarge = r.EnlargementFor(rect);
    double area = r.Area();
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best = static_cast<int>(i);
      best_enlarge = enlarge;
      best_area = area;
    }
  }
  return best;
}

namespace {

/// Quadratic-split seed selection: the pair wasting the most area together.
template <typename GetRect>
std::pair<size_t, size_t> PickSeeds(size_t n, GetRect get) {
  size_t s1 = 0, s2 = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      Rect u = get(i);
      u.Expand(get(j));
      double waste = u.Area() - get(i).Area() - get(j).Area();
      if (waste > worst) {
        worst = waste;
        s1 = i;
        s2 = j;
      }
    }
  }
  return {s1, s2};
}

}  // namespace

int32_t RTree::SplitNode(int32_t node_id) {
  int32_t sibling_id = NewNode(nodes_[node_id].leaf);
  Node& node = nodes_[node_id];
  Node& sibling = nodes_[sibling_id];

  if (node.leaf) {
    std::vector<Entry> all = std::move(node.entries);
    node.entries.clear();
    auto [s1, s2] =
        PickSeeds(all.size(), [&](size_t i) { return all[i].rect; });
    Rect r1 = all[s1].rect, r2 = all[s2].rect;
    node.entries.push_back(all[s1]);
    sibling.entries.push_back(all[s2]);
    for (size_t i = 0; i < all.size(); ++i) {
      if (i == s1 || i == s2) continue;
      // Force balance so both halves meet the minimum fill.
      size_t remaining =
          (all.size() - i) - (s1 >= i ? 1 : 0) - (s2 >= i ? 1 : 0);
      if (node.entries.size() + remaining <= min_entries_) {
        node.entries.push_back(all[i]);
        r1.Expand(all[i].rect);
        continue;
      }
      if (sibling.entries.size() + remaining <= min_entries_) {
        sibling.entries.push_back(all[i]);
        r2.Expand(all[i].rect);
        continue;
      }
      if (r1.EnlargementFor(all[i].rect) <= r2.EnlargementFor(all[i].rect)) {
        node.entries.push_back(all[i]);
        r1.Expand(all[i].rect);
      } else {
        sibling.entries.push_back(all[i]);
        r2.Expand(all[i].rect);
      }
    }
  } else {
    std::vector<int32_t> all = std::move(node.children);
    node.children.clear();
    auto [s1, s2] =
        PickSeeds(all.size(), [&](size_t i) { return nodes_[all[i]].rect; });
    Rect r1 = nodes_[all[s1]].rect, r2 = nodes_[all[s2]].rect;
    node.children.push_back(all[s1]);
    sibling.children.push_back(all[s2]);
    for (size_t i = 0; i < all.size(); ++i) {
      if (i == s1 || i == s2) continue;
      size_t remaining =
          (all.size() - i) - (s1 >= i ? 1 : 0) - (s2 >= i ? 1 : 0);
      const Rect& r = nodes_[all[i]].rect;
      if (node.children.size() + remaining <= min_entries_) {
        node.children.push_back(all[i]);
        r1.Expand(r);
        continue;
      }
      if (sibling.children.size() + remaining <= min_entries_) {
        sibling.children.push_back(all[i]);
        r2.Expand(r);
        continue;
      }
      if (r1.EnlargementFor(r) <= r2.EnlargementFor(r)) {
        node.children.push_back(all[i]);
        r1.Expand(r);
      } else {
        sibling.children.push_back(all[i]);
        r2.Expand(r);
      }
    }
  }
  RecomputeRect(node_id);
  RecomputeRect(sibling_id);
  return sibling_id;
}

int32_t RTree::InsertRec(int32_t node_id, const Entry& entry) {
  Node& node = nodes_[node_id];
  if (node.leaf) {
    node.entries.push_back(entry);
    node.rect.Expand(entry.rect);
    if (node.entries.size() > max_entries_) return SplitNode(node_id);
    return -1;
  }
  int child_pos = ChooseChild(node, entry.rect);
  int32_t child_id = node.children[child_pos];
  int32_t split = InsertRec(child_id, entry);
  Node& node2 = nodes_[node_id];  // re-fetch: arena may have reallocated
  node2.rect.Expand(entry.rect);
  if (split >= 0) {
    node2.children.push_back(split);
    node2.rect.Expand(nodes_[split].rect);
    if (node2.children.size() > max_entries_) return SplitNode(node_id);
  }
  return -1;
}

void RTree::Insert(const Rect& rect, uint64_t id) {
  Entry entry{rect, id};
  if (root_ < 0) root_ = NewNode(/*leaf=*/true);
  int32_t split = InsertRec(root_, entry);
  if (split >= 0) {
    int32_t new_root = NewNode(/*leaf=*/false);
    nodes_[new_root].children = {root_, split};
    RecomputeRect(new_root);
    root_ = new_root;
  }
  ++size_;
}

void RTree::BulkLoad(std::vector<Entry> entries) {
  nodes_.clear();
  root_ = -1;
  size_ = entries.size();
  if (entries.empty()) return;

  // STR: sort by center x, slice into vertical strips, sort each strip by
  // center y, pack runs of max_entries_ into leaves; repeat upward.
  size_t leaf_cap = max_entries_;
  size_t num_leaves = (entries.size() + leaf_cap - 1) / leaf_cap;
  size_t strips = static_cast<size_t>(std::ceil(std::sqrt(
      static_cast<double>(num_leaves))));
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.rect.Center().x < b.rect.Center().x;
  });

  std::vector<int32_t> level;
  size_t per_strip = (entries.size() + strips - 1) / strips;
  for (size_t s = 0; s * per_strip < entries.size(); ++s) {
    size_t b = s * per_strip;
    size_t e = std::min(entries.size(), b + per_strip);
    std::sort(entries.begin() + b, entries.begin() + e,
              [](const Entry& a, const Entry& x) {
                return a.rect.Center().y < x.rect.Center().y;
              });
    for (size_t i = b; i < e; i += leaf_cap) {
      int32_t leaf = NewNode(/*leaf=*/true);
      size_t hi = std::min(e, i + leaf_cap);
      nodes_[leaf].entries.assign(entries.begin() + i, entries.begin() + hi);
      RecomputeRect(leaf);
      level.push_back(leaf);
    }
  }

  // Pack internal levels the same way until one root remains.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(), [&](int32_t a, int32_t b) {
      return nodes_[a].rect.Center().x < nodes_[b].rect.Center().x;
    });
    size_t num_parents = (level.size() + max_entries_ - 1) / max_entries_;
    size_t pstrips = static_cast<size_t>(std::ceil(std::sqrt(
        static_cast<double>(num_parents))));
    size_t pper = (level.size() + pstrips - 1) / pstrips;
    std::vector<int32_t> next;
    for (size_t s = 0; s * pper < level.size(); ++s) {
      size_t b = s * pper;
      size_t e = std::min(level.size(), b + pper);
      std::sort(level.begin() + b, level.begin() + e, [&](int32_t x, int32_t y) {
        return nodes_[x].rect.Center().y < nodes_[y].rect.Center().y;
      });
      for (size_t i = b; i < e; i += max_entries_) {
        int32_t parent = NewNode(/*leaf=*/false);
        size_t hi = std::min(e, i + max_entries_);
        nodes_[parent].children.assign(level.begin() + i, level.begin() + hi);
        RecomputeRect(parent);
        next.push_back(parent);
      }
    }
    level = std::move(next);
  }
  root_ = level.front();
}

void RTree::SearchRec(int32_t node_id, const Rect& window,
                      const std::function<bool(const Entry&)>& fn,
                      bool* keep_going) const {
  if (!*keep_going) return;
  ++nodes_visited;
  const Node& node = nodes_[node_id];
  if (!node.rect.Intersects(window)) return;
  if (node.leaf) {
    for (const Entry& e : node.entries) {
      if (e.rect.Intersects(window)) {
        if (!fn(e)) {
          *keep_going = false;
          return;
        }
      }
    }
    return;
  }
  for (int32_t c : node.children) {
    SearchRec(c, window, fn, keep_going);
    if (!*keep_going) return;
  }
}

void RTree::Search(const Rect& window,
                   const std::function<bool(const Entry&)>& fn) const {
  nodes_visited = 0;
  if (root_ < 0) return;
  bool keep_going = true;
  SearchRec(root_, window, fn, &keep_going);
}

std::vector<RTree::Entry> RTree::SearchAll(const Rect& window) const {
  std::vector<Entry> out;
  Search(window, [&](const Entry& e) {
    out.push_back(e);
    return true;
  });
  return out;
}

std::vector<RTree::Entry> RTree::KNearest(const Point& p, size_t k) const {
  nodes_visited = 0;
  std::vector<Entry> out;
  if (root_ < 0 || k == 0) return out;

  struct Item {
    double dist;
    bool is_entry;
    int32_t node;
    Entry entry;
  };
  auto cmp = [](const Item& a, const Item& b) { return a.dist > b.dist; };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> pq(cmp);
  pq.push({nodes_[root_].rect.DistanceSq(p), false, root_, {}});

  while (!pq.empty() && out.size() < k) {
    Item item = pq.top();
    pq.pop();
    if (item.is_entry) {
      out.push_back(item.entry);
      continue;
    }
    ++nodes_visited;
    const Node& node = nodes_[item.node];
    if (node.leaf) {
      for (const Entry& e : node.entries) {
        pq.push({e.rect.DistanceSq(p), true, -1, e});
      }
    } else {
      for (int32_t c : node.children) {
        pq.push({nodes_[c].rect.DistanceSq(p), false, c, {}});
      }
    }
  }
  return out;
}

int RTree::HeightRec(int32_t node_id) const {
  const Node& node = nodes_[node_id];
  if (node.leaf) return 1;
  return 1 + HeightRec(node.children.front());
}

int RTree::height() const { return root_ < 0 ? 0 : HeightRec(root_); }

Rect RTree::Bounds() const {
  return root_ < 0 ? Rect::Empty() : nodes_[root_].rect;
}

size_t RTree::MemoryUsage() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) {
    bytes += n.entries.capacity() * sizeof(Entry) +
             n.children.capacity() * sizeof(int32_t);
  }
  return bytes;
}

}  // namespace lodviz::geo
