#ifndef LODVIZ_GEO_NANOCUBE_H_
#define LODVIZ_GEO_NANOCUBE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "geo/tiles.h"

namespace lodviz::geo {

/// A spatio-temporal event: projected position, timestamp, small
/// categorical attribute.
struct StEvent {
  Point position;
  double time = 0.0;
  uint16_t category = 0;
};

/// Nanocube-lite [96]: a sparse index over (spatial tile pyramid x time
/// bins x category) that answers "how many events in this viewport, time
/// brush, and category?" without touching raw points — the data structure
/// the survey's Section 4 names as the model for spatio-temporal WoD
/// exploration. Counts per (tile, category) are stored as cumulative
/// time-bin series, so a time-range query per tile is two binary
/// searches.
class SpatioTemporalCube {
 public:
  struct Options {
    /// Tile pyramid depth; queries may use any zoom in [0, max_zoom].
    uint8_t max_zoom = 8;
    /// Temporal resolution.
    uint32_t time_bins = 256;
    /// Number of categorical values (categories >= this are rejected).
    uint16_t num_categories = 1;
    /// Spatial domain (events outside clamp to the border tiles).
    Rect domain{0.0, 0.0, 1.0, 1.0};
    /// Temporal domain [t0, t1); events outside clamp to edge bins.
    double t0 = 0.0;
    double t1 = 1.0;
  };

  /// Builds the cube in one pass over the events.
  static Result<SpatioTemporalCube> Build(const std::vector<StEvent>& events,
                                          const Options& options);

  /// Events with position in `window` (at `zoom` granularity — the window
  /// is expanded to whole tiles), time in [t_lo, t_hi), and, when given,
  /// the exact category. O(tiles_in_window * log time_bins).
  uint64_t Count(uint8_t zoom, const Rect& window, double t_lo, double t_hi,
                 std::optional<uint16_t> category = std::nullopt) const;

  /// Per-time-bin counts for a window (the brushing histogram a UI shows).
  std::vector<uint64_t> TimeSeries(uint8_t zoom, const Rect& window,
                                   std::optional<uint16_t> category =
                                       std::nullopt) const;

  uint64_t total_events() const { return total_; }
  const Options& options() const { return options_; }
  size_t MemoryUsage() const;

 private:
  SpatioTemporalCube(const Options& options)
      : options_(options), scheme_(options.domain) {}

  uint32_t BinOf(double t) const;

  /// Sparse-map key: (packed tile, category) — injective by construction.
  using CellKey = std::pair<uint64_t, uint16_t>;
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      uint64_t h = k.first * 0x9E3779B97F4A7C15ULL + k.second;
      h ^= h >> 29;
      return static_cast<size_t>(h);
    }
  };
  static CellKey Key(const TileKey& tile, uint16_t category) {
    return {tile.Pack(), category};
  }

  // (bin, cumulative-count-through-bin), ascending by bin.
  using CumSeries = std::vector<std::pair<uint32_t, uint64_t>>;
  /// Events in the series with bin in [b_lo, b_hi].
  static uint64_t RangeFromSeries(const CumSeries& series, uint32_t b_lo,
                                  uint32_t b_hi);

  Options options_;
  TileScheme scheme_;
  std::unordered_map<CellKey, CumSeries, CellKeyHash> cells_;
  uint64_t total_ = 0;
};

}  // namespace lodviz::geo

#endif  // LODVIZ_GEO_NANOCUBE_H_
