#ifndef LODVIZ_GEO_GEOMETRY_H_
#define LODVIZ_GEO_GEOMETRY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace lodviz::geo {

/// A 2-D point (screen/layout space or lon/lat degrees).
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point& other) const {
    return x == other.x && y == other.y;
  }
};

/// Axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  static Rect FromPoint(const Point& p) { return {p.x, p.y, p.x, p.y}; }

  static Rect Empty() {
    return {std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};
  }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  double Width() const { return std::max(0.0, max_x - min_x); }
  double Height() const { return std::max(0.0, max_y - min_y); }
  double Area() const { return Width() * Height(); }
  double Margin() const { return Width() + Height(); }

  Point Center() const { return {(min_x + max_x) / 2, (min_y + max_y) / 2}; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  bool Contains(const Rect& r) const {
    return r.min_x >= min_x && r.max_x <= max_x && r.min_y >= min_y &&
           r.max_y <= max_y;
  }
  bool Intersects(const Rect& r) const {
    return !(r.min_x > max_x || r.max_x < min_x || r.min_y > max_y ||
             r.max_y < min_y);
  }

  /// Grows to cover `r`.
  void Expand(const Rect& r) {
    min_x = std::min(min_x, r.min_x);
    min_y = std::min(min_y, r.min_y);
    max_x = std::max(max_x, r.max_x);
    max_y = std::max(max_y, r.max_y);
  }
  void Expand(const Point& p) { Expand(FromPoint(p)); }

  /// Area of the union with `r` minus own area (R-tree enlargement cost).
  double EnlargementFor(const Rect& r) const {
    Rect u = *this;
    u.Expand(r);
    return u.Area() - Area();
  }

  /// Squared distance from `p` to the nearest point of the rect (0 inside).
  double DistanceSq(const Point& p) const {
    double dx = std::max({min_x - p.x, 0.0, p.x - max_x});
    double dy = std::max({min_y - p.y, 0.0, p.y - max_y});
    return dx * dx + dy * dy;
  }

  bool operator==(const Rect& other) const {
    return min_x == other.min_x && min_y == other.min_y &&
           max_x == other.max_x && max_y == other.max_y;
  }
};

inline double DistanceSq(const Point& a, const Point& b) {
  double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSq(a, b));
}

}  // namespace lodviz::geo

#endif  // LODVIZ_GEO_GEOMETRY_H_
