#include "geo/nanocube.h"

#include <algorithm>
#include <map>

namespace lodviz::geo {

uint32_t SpatioTemporalCube::BinOf(double t) const {
  double span = std::max(1e-300, options_.t1 - options_.t0);
  int64_t bin = static_cast<int64_t>((t - options_.t0) / span *
                                     options_.time_bins);
  return static_cast<uint32_t>(
      std::clamp<int64_t>(bin, 0, options_.time_bins - 1));
}

Result<SpatioTemporalCube> SpatioTemporalCube::Build(
    const std::vector<StEvent>& events, const Options& options) {
  if (options.num_categories == 0) {
    return Status::InvalidArgument("need at least one category");
  }
  if (options.time_bins == 0) {
    return Status::InvalidArgument("need at least one time bin");
  }
  if (!(options.t1 > options.t0)) {
    return Status::InvalidArgument("need t1 > t0");
  }
  SpatioTemporalCube cube(options);

  // One hash update per event at the finest zoom; coarser levels are
  // aggregated bottom-up from their children (each cell touched once per
  // level instead of each event touched once per level).
  using BinCounts = std::map<uint32_t, uint64_t>;
  std::unordered_map<CellKey, BinCounts, CellKeyHash> level;
  for (const StEvent& e : events) {
    if (e.category >= options.num_categories) {
      return Status::OutOfRange("event category " +
                                std::to_string(e.category) + " out of range");
    }
    uint32_t bin = cube.BinOf(e.time);
    TileKey tile = cube.scheme_.TileForPoint(options.max_zoom, e.position);
    ++level[Key(tile, e.category)][bin];
    ++cube.total_;
  }

  auto finalize = [&cube](const std::unordered_map<CellKey, BinCounts,
                                                   CellKeyHash>& cells) {
    for (const auto& [key, bins] : cells) {
      CumSeries series;
      series.reserve(bins.size());
      uint64_t cum = 0;
      for (const auto& [bin, count] : bins) {
        cum += count;
        series.emplace_back(bin, cum);
      }
      cube.cells_.emplace(key, std::move(series));
    }
  };

  finalize(level);
  for (int z = options.max_zoom; z > 0; --z) {
    std::unordered_map<CellKey, BinCounts, CellKeyHash> parent_level;
    for (const auto& [key, bins] : level) {
      TileKey parent = TileKey::Unpack(key.first).Parent();
      BinCounts& parent_bins = parent_level[Key(parent, key.second)];
      for (const auto& [bin, count] : bins) parent_bins[bin] += count;
    }
    finalize(parent_level);
    level = std::move(parent_level);
  }
  return cube;
}

uint64_t SpatioTemporalCube::RangeFromSeries(const CumSeries& series,
                                             uint32_t b_lo, uint32_t b_hi) {
  if (series.empty() || b_hi < b_lo) return 0;
  auto cum_through = [&](int64_t bin) -> uint64_t {
    if (bin < 0) return 0;
    // Last entry with bin <= `bin`.
    auto it = std::upper_bound(
        series.begin(), series.end(), bin,
        [](int64_t b, const std::pair<uint32_t, uint64_t>& entry) {
          return b < static_cast<int64_t>(entry.first);
        });
    if (it == series.begin()) return 0;
    return std::prev(it)->second;
  };
  return cum_through(b_hi) - cum_through(static_cast<int64_t>(b_lo) - 1);
}

uint64_t SpatioTemporalCube::Count(uint8_t zoom, const Rect& window,
                                   double t_lo, double t_hi,
                                   std::optional<uint16_t> category) const {
  if (zoom > options_.max_zoom || t_hi <= t_lo) return 0;
  uint32_t b_lo = BinOf(t_lo);
  // t_hi is exclusive; subtract epsilon via bin of the previous instant.
  double span = std::max(1e-300, options_.t1 - options_.t0);
  double epsilon = span / options_.time_bins / 1000.0;
  uint32_t b_hi = BinOf(t_hi - epsilon);

  uint64_t total = 0;
  for (const TileKey& tile : scheme_.TilesInRect(zoom, window)) {
    if (category.has_value()) {
      auto it = cells_.find(Key(tile, *category));
      if (it != cells_.end()) total += RangeFromSeries(it->second, b_lo, b_hi);
    } else {
      for (uint16_t c = 0; c < options_.num_categories; ++c) {
        auto it = cells_.find(Key(tile, c));
        if (it != cells_.end()) {
          total += RangeFromSeries(it->second, b_lo, b_hi);
        }
      }
    }
  }
  return total;
}

std::vector<uint64_t> SpatioTemporalCube::TimeSeries(
    uint8_t zoom, const Rect& window,
    std::optional<uint16_t> category) const {
  std::vector<uint64_t> out(options_.time_bins, 0);
  if (zoom > options_.max_zoom) return out;
  auto add_series = [&](const CumSeries& series) {
    uint64_t prev = 0;
    for (const auto& [bin, cum] : series) {
      out[bin] += cum - prev;
      prev = cum;
    }
  };
  for (const TileKey& tile : scheme_.TilesInRect(zoom, window)) {
    if (category.has_value()) {
      auto it = cells_.find(Key(tile, *category));
      if (it != cells_.end()) add_series(it->second);
    } else {
      for (uint16_t c = 0; c < options_.num_categories; ++c) {
        auto it = cells_.find(Key(tile, c));
        if (it != cells_.end()) add_series(it->second);
      }
    }
  }
  return out;
}

size_t SpatioTemporalCube::MemoryUsage() const {
  size_t bytes = cells_.size() * (sizeof(uint64_t) + sizeof(void*) * 2);
  for (const auto& [key, series] : cells_) {
    bytes += series.capacity() * sizeof(std::pair<uint32_t, uint64_t>);
  }
  return bytes;
}

}  // namespace lodviz::geo
