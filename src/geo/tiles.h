#ifndef LODVIZ_GEO_TILES_H_
#define LODVIZ_GEO_TILES_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "geo/geometry.h"

namespace lodviz::geo {

/// Identifies one tile of a quadtree tiling of a square domain:
/// zoom level z has 2^z x 2^z tiles.
struct TileKey {
  uint8_t zoom = 0;
  uint32_t x = 0;
  uint32_t y = 0;

  bool operator==(const TileKey& other) const {
    return zoom == other.zoom && x == other.x && y == other.y;
  }

  /// Packs into one 64-bit value (hashing / map keys).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(zoom) << 56) |
           (static_cast<uint64_t>(x) << 28) | static_cast<uint64_t>(y);
  }

  /// Inverse of Pack.
  static TileKey Unpack(uint64_t packed) {
    return {static_cast<uint8_t>(packed >> 56),
            static_cast<uint32_t>((packed >> 28) & 0x0FFFFFFF),
            static_cast<uint32_t>(packed & 0x0FFFFFFF)};
  }

  /// Parent tile one zoom level up (zoom 0 returns itself).
  TileKey Parent() const {
    if (zoom == 0) return *this;
    return {static_cast<uint8_t>(zoom - 1), x / 2, y / 2};
  }

  /// The four children one zoom level down.
  std::vector<TileKey> Children() const {
    uint8_t z = static_cast<uint8_t>(zoom + 1);
    return {{z, 2 * x, 2 * y},
            {z, 2 * x + 1, 2 * y},
            {z, 2 * x, 2 * y + 1},
            {z, 2 * x + 1, 2 * y + 1}};
  }
};

struct TileKeyHash {
  size_t operator()(const TileKey& k) const {
    return std::hash<uint64_t>()(k.Pack());
  }
};

/// Maps a rectangular data domain onto the quadtree tile grid.
class TileScheme {
 public:
  /// The domain rect is stretched over the whole tile square.
  explicit TileScheme(Rect domain) : domain_(domain) {}

  const Rect& domain() const { return domain_; }

  /// Tile containing `p` at `zoom` (points outside clamp to edge tiles).
  TileKey TileForPoint(uint8_t zoom, const Point& p) const;

  /// All tiles intersecting `window` at `zoom`.
  std::vector<TileKey> TilesInRect(uint8_t zoom, const Rect& window) const;

  /// Domain-space bounds of a tile.
  Rect TileBounds(const TileKey& key) const;

 private:
  Rect domain_;
};

/// Materialized tile -> item-ids map over a point dataset: the server-side
/// structure behind map panning / tile caching / prefetching experiments
/// (imMens/Nanocubes-style precomputed tiles [97, 96]).
class TileIndex {
 public:
  TileIndex(TileScheme scheme, uint8_t max_zoom)
      : scheme_(scheme), max_zoom_(max_zoom) {}

  /// Indexes an item at `p` into every zoom level up to max_zoom.
  void Add(uint64_t id, const Point& p);

  /// Item ids in one tile (empty vector if none).
  const std::vector<uint64_t>& Items(const TileKey& key) const;

  /// Number of items in a tile without materializing them.
  uint64_t Count(const TileKey& key) const;

  const TileScheme& scheme() const { return scheme_; }
  uint8_t max_zoom() const { return max_zoom_; }
  size_t tile_count() const { return tiles_.size(); }
  size_t MemoryUsage() const;

 private:
  TileScheme scheme_;
  uint8_t max_zoom_;
  std::unordered_map<TileKey, std::vector<uint64_t>, TileKeyHash> tiles_;
  std::vector<uint64_t> empty_;
};

}  // namespace lodviz::geo

#endif  // LODVIZ_GEO_TILES_H_
