#ifndef LODVIZ_GEO_PROJECTION_H_
#define LODVIZ_GEO_PROJECTION_H_

#include "geo/geometry.h"

namespace lodviz::geo {

/// Equirectangular projection: (lon, lat) degrees -> unit square, with
/// y increasing northwards. The map renderers and geo benches work in this
/// projected space.
inline Point ProjectEquirectangular(double lon_deg, double lat_deg) {
  return {(lon_deg + 180.0) / 360.0, (lat_deg + 90.0) / 180.0};
}

/// Inverse of ProjectEquirectangular.
inline void UnprojectEquirectangular(const Point& p, double* lon_deg,
                                     double* lat_deg) {
  *lon_deg = p.x * 360.0 - 180.0;
  *lat_deg = p.y * 180.0 - 90.0;
}

/// The projected world domain (unit square).
inline Rect WorldDomain() { return {0.0, 0.0, 1.0, 1.0}; }

}  // namespace lodviz::geo

#endif  // LODVIZ_GEO_PROJECTION_H_
