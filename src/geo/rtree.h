#ifndef LODVIZ_GEO_RTREE_H_
#define LODVIZ_GEO_RTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geo/geometry.h"

namespace lodviz::geo {

/// An R-tree over (rect, id) entries with quadratic-split insertion and
/// STR (sort-tile-recursive) bulk loading.
///
/// This is the spatial access method behind graphVizdb-style interactive
/// graph exploration [22, 23]: node/edge layouts are indexed once, then
/// pan/zoom becomes a window query touching only the visible portion.
class RTree {
 public:
  struct Entry {
    Rect rect;
    uint64_t id = 0;
  };

  /// `max_entries` per node; min is max/2 rounded down (>= 2).
  explicit RTree(size_t max_entries = 16);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  /// Builds a packed tree from all entries at once (STR). Clears any
  /// existing content.
  void BulkLoad(std::vector<Entry> entries);

  /// Inserts one entry.
  void Insert(const Rect& rect, uint64_t id);

  /// Invokes `fn` for every entry whose rect intersects `window`;
  /// return false from `fn` to stop early.
  void Search(const Rect& window,
              const std::function<bool(const Entry&)>& fn) const;

  /// Materializes window-query results.
  [[nodiscard]] std::vector<Entry> SearchAll(const Rect& window) const;

  /// The k entries nearest to `p` (by rect distance), closest first.
  [[nodiscard]] std::vector<Entry> KNearest(const Point& p, size_t k) const;

  [[nodiscard]] size_t size() const { return size_; }
  int height() const;
  /// Bounding box of everything in the tree.
  Rect Bounds() const;
  /// Nodes visited by the last Search/KNearest (perf introspection).
  mutable uint64_t nodes_visited = 0;

  size_t MemoryUsage() const;

 private:
  struct Node {
    bool leaf = true;
    Rect rect = Rect::Empty();
    std::vector<Entry> entries;    // leaf payloads
    std::vector<int32_t> children; // internal children (node indices)
  };

  int32_t NewNode(bool leaf);
  /// Inserts into the subtree at `node_id`; returns the id of a newly
  /// created sibling if the node split, else -1.
  int32_t InsertRec(int32_t node_id, const Entry& entry);
  int32_t SplitNode(int32_t node_id);
  void RecomputeRect(int32_t node_id);
  int ChooseChild(const Node& node, const Rect& rect) const;
  void SearchRec(int32_t node_id, const Rect& window,
                 const std::function<bool(const Entry&)>& fn,
                 bool* keep_going) const;
  int HeightRec(int32_t node_id) const;

  size_t max_entries_;
  size_t min_entries_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  size_t size_ = 0;
};

}  // namespace lodviz::geo

#endif  // LODVIZ_GEO_RTREE_H_
