#ifndef LODVIZ_CORE_CAPABILITIES_H_
#define LODVIZ_CORE_CAPABILITIES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lodviz::core {

/// The capability columns of the survey's Tables 1 and 2.
enum class Capability : uint32_t {
  kKeywordSearch = 1u << 0,   ///< Table 2 "Keyword"
  kFilter = 1u << 1,          ///< Table 2 "Filter"
  kSampling = 1u << 2,        ///< "Sampling" (sampling/filtering reduction)
  kAggregation = 1u << 3,     ///< "Aggregation" (binning, clustering)
  kIncremental = 1u << 4,     ///< "Incr." (progressive computation)
  kDiskBased = 1u << 5,       ///< "Disk" (external memory at runtime)
  kRecommendation = 1u << 6,  ///< Table 1 "Recomm."
  kPreferences = 1u << 7,     ///< Table 1 "Preferences"
  kStatistics = 1u << 8,      ///< Table 1 "Statistics"
};

using CapabilitySet = uint32_t;

inline constexpr CapabilitySet kNoCapabilities = 0;

constexpr CapabilitySet Caps() { return 0; }
template <typename... Rest>
constexpr CapabilitySet Caps(Capability first, Rest... rest) {
  return static_cast<CapabilitySet>(first) | Caps(rest...);
}

inline bool HasCapability(CapabilitySet set, Capability cap) {
  return (set & static_cast<CapabilitySet>(cap)) != 0;
}

std::string_view CapabilityName(Capability cap);

/// All capabilities, in table-column order.
const std::vector<Capability>& AllCapabilities();

}  // namespace lodviz::core

#endif  // LODVIZ_CORE_CAPABILITIES_H_
