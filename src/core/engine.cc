#include "core/engine.h"

#include <algorithm>
#include <unordered_map>

#include "common/stopwatch.h"
#include "geo/projection.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "rdf/vocab.h"
#include "stats/histogram.h"
#include "stats/sampler.h"
#include "graph/layout.h"

namespace lodviz::core {

namespace {

/// Counts one invocation of a facade capability under
/// `core.engine.<capability>`. Facade calls are coarse (a load, a query, a
/// render), so the registry lookup per call is acceptable here.
void CountCapability(const char* capability) {
  obs::MetricRegistry::Global()
      .GetCounter(std::string("core.engine.") + capability)
      .Increment();
}

}  // namespace

Engine::Engine(Options options) : options_(std::move(options)) {
  // The journal is process-wide; the facade only arms it (see the Options
  // comment about the last engine winning).
  if (options_.slow_query_us >= 0) {
    obs::QueryLog::Global().SetThresholdMicros(options_.slow_query_us);
  }
}

void Engine::InvalidateDerived() {
  profile_.reset();
  keyword_.reset();
  disk_dirty_ = true;
}

Status Engine::RebuildDiskMirror() {
  LODVIZ_TRACE_SPAN("core.engine.rebuild_disk_mirror");
  const std::string path =
      options_.disk_path.empty() ? "lodviz_engine_disk.db" : options_.disk_path;
  LODVIZ_ASSIGN_OR_RETURN(
      std::unique_ptr<storage::DiskTripleStore> disk,
      storage::DiskTripleStore::Create(path, options_.pool_pages));
  // Compact so the memory store is deduplicated: both backends then hold
  // the same triple multiset and produce bit-identical query results.
  store_.Compact();
  std::vector<rdf::Triple> triples;
  triples.reserve(store_.size());
  store_.Scan({}, [&](const rdf::Triple& t) {
    triples.push_back(t);
    return true;
  });
  LODVIZ_RETURN_NOT_OK(disk->BulkLoad(std::move(triples)));
  disk_store_ = std::move(disk);
  disk_source_ = std::make_unique<storage::DiskSourceAdapter>(
      disk_store_.get(), &store_.dict());
  disk_dirty_ = false;
  return Status::OK();
}

Result<const rdf::TripleSource*> Engine::ActiveSource() {
  if (options_.backend == Backend::kMemory) {
    return static_cast<const rdf::TripleSource*>(&store_);
  }
  if (disk_dirty_ || disk_source_ == nullptr) {
    LODVIZ_RETURN_NOT_OK(RebuildDiskMirror());
  }
  return static_cast<const rdf::TripleSource*>(disk_source_.get());
}

Status Engine::LoadNTriples(std::string_view document) {
  LODVIZ_TRACE_SPAN("core.engine.load_ntriples");
  CountCapability("load_ntriples");
  Stopwatch sw;
  Result<size_t> n = rdf::LoadNTriplesString(document, &store_);
  if (!n.ok()) return n.status();
  InvalidateDerived();
  session_.Record(explore::OpKind::kLoad, "ntriples", sw.ElapsedMillis(),
                  n.ValueOrDie());
  return Status::OK();
}

size_t Engine::LoadSynthetic(const workload::SyntheticLodOptions& options) {
  LODVIZ_TRACE_SPAN("core.engine.load_synthetic");
  CountCapability("load_synthetic");
  Stopwatch sw;
  size_t n = workload::GenerateSyntheticLod(options, &store_);
  InvalidateDerived();
  session_.Record(explore::OpKind::kLoad, "synthetic", sw.ElapsedMillis(), n);
  return n;
}

size_t Engine::IngestStream(rdf::StreamSource* source, size_t batch_size) {
  LODVIZ_TRACE_SPAN("core.engine.ingest_stream");
  CountCapability("ingest_stream");
  Stopwatch sw;
  size_t n = rdf::IngestStream(source, &store_, batch_size);
  InvalidateDerived();
  session_.Record(explore::OpKind::kLoad, "stream", sw.ElapsedMillis(), n);
  return n;
}

Result<std::vector<rdf::ParsedTriple>> Engine::QueryGraph(
    std::string_view sparql_text) {
  LODVIZ_TRACE_SPAN("core.engine.query_graph");
  CountCapability("query_graph");
  Stopwatch sw;
  LODVIZ_ASSIGN_OR_RETURN(const rdf::TripleSource* source, ActiveSource());
  sparql::QueryEngine query_engine(source);
  Result<std::vector<rdf::ParsedTriple>> result =
      query_engine.ExecuteGraphString(sparql_text);
  session_.Record(explore::OpKind::kQuery,
                  std::string(sparql_text.substr(0, 60)), sw.ElapsedMillis(),
                  result.ok() ? result->size() : 0);
  return result;
}

Status Engine::LoadTurtle(std::string_view document) {
  LODVIZ_TRACE_SPAN("core.engine.load_turtle");
  CountCapability("load_turtle");
  Stopwatch sw;
  Result<size_t> n = rdf::LoadTurtleString(document, &store_);
  if (!n.ok()) return n.status();
  InvalidateDerived();
  session_.Record(explore::OpKind::kLoad, "turtle", sw.ElapsedMillis(),
                  n.ValueOrDie());
  return Status::OK();
}

Result<sparql::ResultTable> Engine::Query(std::string_view sparql_text) {
  LODVIZ_TRACE_SPAN("core.engine.query");
  CountCapability("query");
  Stopwatch sw;
  LODVIZ_ASSIGN_OR_RETURN(const rdf::TripleSource* source, ActiveSource());
  sparql::QueryEngine query_engine(source);
  Result<sparql::ResultTable> result = query_engine.ExecuteString(sparql_text);
  session_.Record(explore::OpKind::kQuery,
                  std::string(sparql_text.substr(0, 60)), sw.ElapsedMillis(),
                  result.ok() ? result->num_rows() : 0);
  return result;
}

Result<std::unique_ptr<serve::Frontend>> Engine::MakeFrontend(
    const serve::FrontendOptions& frontend_options) {
  LODVIZ_TRACE_SPAN("core.engine.make_frontend");
  CountCapability("make_frontend");
  LODVIZ_ASSIGN_OR_RETURN(const rdf::TripleSource* source, ActiveSource());
  return std::make_unique<serve::Frontend>(source, frontend_options);
}

Result<std::string> Engine::ExplainQuery(std::string_view sparql_text) {
  LODVIZ_TRACE_SPAN("core.engine.explain_query");
  CountCapability("explain_query");
  Stopwatch sw;
  LODVIZ_ASSIGN_OR_RETURN(const rdf::TripleSource* source, ActiveSource());
  sparql::QueryEngine query_engine(source);
  Result<std::string> plan = query_engine.ExplainString(sparql_text);
  session_.Record(explore::OpKind::kQuery,
                  "explain: " + std::string(sparql_text.substr(0, 52)),
                  sw.ElapsedMillis(), plan.ok() ? 1 : 0);
  return plan;
}

Result<std::string> Engine::ExplainAnalyzeQuery(std::string_view sparql_text) {
  LODVIZ_TRACE_SPAN("core.engine.explain_analyze_query");
  CountCapability("explain_analyze_query");
  Stopwatch sw;
  LODVIZ_ASSIGN_OR_RETURN(const rdf::TripleSource* source, ActiveSource());
  sparql::QueryEngine query_engine(source);
  Result<std::string> report = query_engine.ExplainAnalyzeString(sparql_text);
  session_.Record(explore::OpKind::kQuery,
                  "explain analyze: " + std::string(sparql_text.substr(0, 44)),
                  sw.ElapsedMillis(), report.ok() ? 1 : 0);
  return report;
}

std::string Engine::SlowQueryLogJson() const {
  return obs::QueryLog::Global().ToJson();
}

Result<stats::DatasetProfile> Engine::Profile() {
  CountCapability("profile");
  if (!profile_.has_value()) {
    stats::ProfilerOptions popts;
    popts.seed = options_.seed;
    LODVIZ_ASSIGN_OR_RETURN(stats::DatasetProfile p,
                            stats::ProfileDataset(store_, popts));
    profile_ = std::move(p);
  }
  return *profile_;
}

std::vector<rec::Recommendation> Engine::Recommend(size_t top_k) {
  CountCapability("recommend");
  Result<stats::DatasetProfile> profile = Profile();
  if (!profile.ok()) return {};
  return recommender_.Recommend(profile.ValueOrDie(), top_k);
}

Result<hier::HETree> Engine::BuildHierarchy(
    const std::string& property_iri, const hier::HETree::Options& options) {
  CountCapability("build_hierarchy");
  rdf::TermId pred = store_.dict().Lookup(rdf::Term::Iri(property_iri));
  if (pred == rdf::kInvalidTermId) {
    return Status::NotFound("property not in dataset: " + property_iri);
  }
  return hier::HETree::BuildFromProperty(store_, pred, options);
}

graph::Graph Engine::BuildGraph() const {
  CountCapability("build_graph");
  return graph::Graph::FromTripleStore(store_);
}

graph::GraphHierarchy Engine::BuildGraphHierarchy(
    const graph::GraphHierarchy::Options& options) const {
  return graph::GraphHierarchy::Build(BuildGraph(), options);
}

explore::FacetedBrowser Engine::MakeBrowser() const {
  return explore::FacetedBrowser(&store_);
}

const explore::KeywordIndex& Engine::Keyword() {
  if (!keyword_.has_value()) {
    keyword_ = explore::KeywordIndex::Build(store_);
  }
  return *keyword_;
}

std::vector<explore::SearchHit> Engine::Search(const std::string& query,
                                               size_t top_k) {
  LODVIZ_TRACE_SPAN("core.engine.search");
  CountCapability("search");
  Stopwatch sw;
  std::vector<explore::SearchHit> hits = Keyword().Search(query, top_k);
  session_.Record(explore::OpKind::kKeywordSearch, query, sw.ElapsedMillis(),
                  hits.size());
  return hits;
}

std::vector<geo::Point> Engine::CollectPairs(const std::string& x_iri,
                                             const std::string& y_iri) const {
  const rdf::Dictionary& dict = store_.dict();
  rdf::TermId xp = dict.Lookup(rdf::Term::Iri(x_iri));
  rdf::TermId yp = dict.Lookup(rdf::Term::Iri(y_iri));
  if (xp == rdf::kInvalidTermId || yp == rdf::kInvalidTermId) return {};

  std::unordered_map<rdf::TermId, double> x_values;
  store_.Scan({rdf::kInvalidTermId, xp, rdf::kInvalidTermId},
              [&](const rdf::Triple& t) {
                Result<double> v = dict.term(t.o).AsDouble();
                if (v.ok()) x_values[t.s] = v.ValueOrDie();
                return true;
              });
  std::vector<geo::Point> pairs;
  store_.Scan({rdf::kInvalidTermId, yp, rdf::kInvalidTermId},
              [&](const rdf::Triple& t) {
                auto it = x_values.find(t.s);
                if (it == x_values.end()) return true;
                Result<double> v = dict.term(t.o).AsDouble();
                if (v.ok()) pairs.push_back({it->second, v.ValueOrDie()});
                return true;
              });
  return pairs;
}

std::vector<double> Engine::CollectValues(const std::string& iri) const {
  const rdf::Dictionary& dict = store_.dict();
  rdf::TermId pred = dict.Lookup(rdf::Term::Iri(iri));
  std::vector<double> values;
  if (pred == rdf::kInvalidTermId) return values;
  store_.Scan({rdf::kInvalidTermId, pred, rdf::kInvalidTermId},
              [&](const rdf::Triple& t) {
                const rdf::Term& obj = dict.term(t.o);
                if (obj.IsTemporalLiteral()) {
                  Result<int64_t> v = obj.AsEpochSeconds();
                  if (v.ok()) values.push_back(static_cast<double>(*v));
                } else {
                  Result<double> v = obj.AsDouble();
                  if (v.ok()) values.push_back(*v);
                }
                return true;
              });
  return values;
}

namespace {

/// Applies the element budget by uniform sampling.
template <typename T>
void ApplyBudget(std::vector<T>* items, size_t budget, uint64_t seed) {
  if (budget == 0 || items->size() <= budget) return;
  stats::ReservoirSampler<T> sampler(budget, seed);
  for (const T& item : *items) sampler.Add(item);
  *items = sampler.sample();
}

}  // namespace

Result<ViewResult> Engine::Render(const viz::VisSpec& spec, bool with_svg) {
  LODVIZ_TRACE_SPAN("core.engine.render");
  CountCapability("render");
  Stopwatch sw;
  viz::Canvas canvas(options_.canvas_width, options_.canvas_height);
  ViewResult view;
  view.spec = spec;
  viz::SvgWriter svg(options_.canvas_width, options_.canvas_height);

  switch (spec.kind) {
    case viz::VisKind::kScatter:
    case viz::VisKind::kBubbleChart:
    case viz::VisKind::kCircles: {
      std::vector<geo::Point> pairs =
          CollectPairs(spec.x_property, spec.y_property);
      if (pairs.empty()) {
        return Status::NotFound("no (x, y) numeric pairs for scatter spec");
      }
      ApplyBudget(&pairs, options_.element_budget, options_.seed);
      view.render = viz::RenderScatter(&canvas, pairs);
      if (with_svg) {
        geo::Rect b = geo::Rect::Empty();
        for (const auto& p : pairs) b.Expand(p);
        for (const auto& p : pairs) {
          svg.Circle((p.x - b.min_x) / std::max(1e-9, b.Width()),
                     (p.y - b.min_y) / std::max(1e-9, b.Height()), 2.0,
                     "#1f77b4", 0.6);
        }
      }
      break;
    }
    case viz::VisKind::kMap: {
      std::vector<geo::Point> coords =
          CollectPairs(rdf::vocab::kGeoLong, rdf::vocab::kGeoLat);
      if (coords.empty()) return Status::NotFound("no geo coordinates");
      std::vector<viz::GeoPoint> points;
      points.reserve(coords.size());
      for (const auto& p : coords) points.push_back({p.x, p.y});
      // Above the element budget, aggregate into cluster markers instead
      // of sampling: every point still contributes to a marker's size.
      if (options_.element_budget > 0 &&
          points.size() > options_.element_budget) {
        view.render = viz::RenderClusteredMap(&canvas, points, 48);
      } else {
        view.render = viz::RenderMap(&canvas, points);
      }
      if (with_svg) {
        for (const auto& gp : points) {
          geo::Point projected = geo::ProjectEquirectangular(gp.lon, gp.lat);
          svg.Circle(projected.x, projected.y, 1.5, "#d62728", 0.5);
        }
      }
      break;
    }
    case viz::VisKind::kTimeline: {
      std::vector<double> times = CollectValues(spec.x_property);
      if (times.empty()) return Status::NotFound("no temporal values");
      ApplyBudget(&times, options_.element_budget, options_.seed);
      view.render = viz::RenderTimeline(&canvas, times);
      break;
    }
    case viz::VisKind::kChart:
    case viz::VisKind::kPie:
    case viz::VisKind::kStreamgraph: {
      // Histogram of the x property (aggregation: bounded elements
      // regardless of data size).
      std::vector<double> values = CollectValues(spec.x_property);
      if (values.empty()) {
        return Status::NotFound("no numeric values for chart spec");
      }
      size_t bins = spec.element_budget ? spec.element_budget : 40;
      LODVIZ_ASSIGN_OR_RETURN(
          stats::Histogram hist,
          stats::Histogram::Build(values, bins,
                                  stats::BinningKind::kEquiWidth));
      std::vector<double> counts;
      for (const auto& bin : hist.bins()) {
        counts.push_back(static_cast<double>(bin.count));
      }
      view.render = viz::RenderBars(&canvas, counts);
      view.render.input_size = values.size();
      if (with_svg) {
        double max_count = 1;
        for (double c : counts) max_count = std::max(max_count, c);
        for (size_t i = 0; i < counts.size(); ++i) {
          double w = 1.0 / counts.size();
          svg.Rect({i * w + 0.1 * w, 0.0, (i + 1) * w - 0.1 * w,
                    counts[i] / max_count},
                   "#2ca02c");
        }
      }
      break;
    }
    case viz::VisKind::kTreemap:
    case viz::VisKind::kTree:
    case viz::VisKind::kParallelCoords: {
      // Category counts as treemap weights.
      const std::string& prop = spec.x_property.empty()
                                    ? std::string(rdf::vocab::kRdfType)
                                    : spec.x_property;
      rdf::TermId pred = store_.dict().Lookup(rdf::Term::Iri(prop));
      if (pred == rdf::kInvalidTermId) {
        return Status::NotFound("no categorical property for treemap");
      }
      std::unordered_map<rdf::TermId, uint64_t> counts;
      store_.Scan({rdf::kInvalidTermId, pred, rdf::kInvalidTermId},
                  [&](const rdf::Triple& t) {
                    ++counts[t.o];
                    return true;
                  });
      std::vector<double> weights;
      for (const auto& [value, count] : counts) {
        weights.push_back(static_cast<double>(count));
      }
      if (weights.empty()) return Status::NotFound("no category counts");
      view.render = viz::RenderTreemap(&canvas, weights);
      if (with_svg) {
        auto cells = viz::SquarifiedTreemap(weights, {0, 0, 1, 1});
        for (const auto& cell : cells) {
          svg.Rect(cell.rect, "#9467bd", "#fff");
        }
      }
      break;
    }
    case viz::VisKind::kGraph: {
      graph::Graph g = BuildGraph();
      if (g.num_nodes() == 0) return Status::NotFound("no entity links");
      graph::ForceLayoutOptions lopts;
      lopts.seed = options_.seed;
      lopts.iterations = g.num_nodes() > 2000 ? 15 : 40;
      graph::Layout layout = graph::ForceDirectedLayout(g, lopts);
      view.render = viz::RenderGraph(&canvas, g, layout);
      if (with_svg) {
        for (const auto& [u, v] : g.edges()) {
          svg.Line(layout[u].x, layout[u].y, layout[v].x, layout[v].y, "#999",
                   0.5, 0.4);
        }
        for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
          svg.Circle(layout[u].x, layout[u].y, 2.0, "#ff7f0e", 0.8);
        }
      }
      break;
    }
  }

  view.pixels_touched = canvas.pixels_touched();
  view.overplot_factor = canvas.OverplotFactor();
  view.hidden_fraction = canvas.HiddenMarkFraction();
  if (with_svg) view.svg = svg.ToString();
  session_.Record(explore::OpKind::kRender,
                  std::string(viz::VisKindName(spec.kind)), sw.ElapsedMillis(),
                  view.render.elements_drawn);
  return view;
}

}  // namespace lodviz::core
