#include "core/ldvm.h"

namespace lodviz::core {

LdvmPipeline::LdvmPipeline(Engine* engine) : engine_(engine) {
  analytical_ = [](Engine& e) { return e.Profile(); };
  visual_ = [](Engine& e, const stats::DatasetProfile& profile)
      -> Result<viz::VisSpec> {
    std::vector<rec::Recommendation> recs =
        e.recommender().Recommend(profile, 1);
    if (recs.empty()) {
      return Status::NotFound("no visualization applies to this profile");
    }
    return recs.front().spec;
  };
  view_ = [](Engine& e, const viz::VisSpec& spec) {
    return e.Render(spec, /*with_svg=*/false);
  };
}

LdvmPipeline& LdvmPipeline::WithAnalyticalStage(AnalyticalStage stage) {
  analytical_ = std::move(stage);
  return *this;
}

LdvmPipeline& LdvmPipeline::WithVisualStage(VisualStage stage) {
  visual_ = std::move(stage);
  return *this;
}

LdvmPipeline& LdvmPipeline::WithViewStage(ViewStage stage) {
  view_ = std::move(stage);
  return *this;
}

Result<ViewResult> LdvmPipeline::Run() {
  LODVIZ_ASSIGN_OR_RETURN(profile_, analytical_(*engine_));
  LODVIZ_ASSIGN_OR_RETURN(spec_, visual_(*engine_, profile_));
  return view_(*engine_, spec_);
}

}  // namespace lodviz::core
