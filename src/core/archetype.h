#ifndef LODVIZ_CORE_ARCHETYPE_H_
#define LODVIZ_CORE_ARCHETYPE_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/registry.h"

namespace lodviz::core {

/// The outcome of exercising one capability through an archetype.
struct ProbeResult {
  Capability capability;
  /// True when the probe actually executed (flag on and operation ran);
  /// false when the archetype refuses it (flag off).
  bool executed = false;
  /// Evidence: objects touched / results produced by the probe.
  uint64_t evidence = 0;
};

/// Wraps the lodviz engine behind a surveyed system's capability profile:
/// operations whose column is blank in the paper's table return
/// Unimplemented; operations with a check mark run for real through the
/// corresponding lodviz component. Regenerating Tables 1/2 from these
/// probes makes every check mark in our output *executed*, not asserted.
class ArchetypeAdapter {
 public:
  /// `engine` must outlive the adapter and already hold data.
  ArchetypeAdapter(const SurveyedSystem& system, Engine* engine);

  const SurveyedSystem& system() const { return system_; }

  /// Runs one capability probe.
  Result<ProbeResult> Probe(Capability capability);

  /// Runs all capability probes in table-column order.
  std::vector<ProbeResult> ProbeAll();

 private:
  Result<uint64_t> RunKeywordSearch();
  Result<uint64_t> RunFilter();
  Result<uint64_t> RunSampling();
  Result<uint64_t> RunAggregation();
  Result<uint64_t> RunIncremental();
  Result<uint64_t> RunDiskBased();
  Result<uint64_t> RunRecommendation();
  Result<uint64_t> RunPreferences();
  Result<uint64_t> RunStatistics();

  SurveyedSystem system_;
  Engine* engine_;
};

}  // namespace lodviz::core

#endif  // LODVIZ_CORE_ARCHETYPE_H_
