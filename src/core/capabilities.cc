#include "core/capabilities.h"

namespace lodviz::core {

std::string_view CapabilityName(Capability cap) {
  switch (cap) {
    case Capability::kKeywordSearch:
      return "Keyword";
    case Capability::kFilter:
      return "Filter";
    case Capability::kSampling:
      return "Sampling";
    case Capability::kAggregation:
      return "Aggregation";
    case Capability::kIncremental:
      return "Incr.";
    case Capability::kDiskBased:
      return "Disk";
    case Capability::kRecommendation:
      return "Recomm.";
    case Capability::kPreferences:
      return "Preferences";
    case Capability::kStatistics:
      return "Statistics";
  }
  return "?";
}

const std::vector<Capability>& AllCapabilities() {
  static const std::vector<Capability> kAll = {
      Capability::kKeywordSearch, Capability::kFilter,
      Capability::kSampling,      Capability::kAggregation,
      Capability::kIncremental,   Capability::kDiskBased,
      Capability::kRecommendation, Capability::kPreferences,
      Capability::kStatistics,
  };
  return kAll;
}

}  // namespace lodviz::core
