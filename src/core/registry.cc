#include "core/registry.h"

namespace lodviz::core {

namespace {

using viz::DataType;
using viz::VisKind;
using C = Capability;

using DT = std::vector<DataType>;
using VT = std::vector<VisKind>;

constexpr DataType N = DataType::kNumeric;
constexpr DataType T = DataType::kTemporal;
constexpr DataType S = DataType::kSpatial;
constexpr DataType H = DataType::kHierarchical;
constexpr DataType G = DataType::kGraph;

constexpr VisKind B = VisKind::kBubbleChart;
constexpr VisKind Ch = VisKind::kChart;
constexpr VisKind CI = VisKind::kCircles;
constexpr VisKind Gr = VisKind::kGraph;
constexpr VisKind M = VisKind::kMap;
constexpr VisKind P = VisKind::kPie;
constexpr VisKind PC = VisKind::kParallelCoords;
constexpr VisKind Sc = VisKind::kScatter;
constexpr VisKind SG = VisKind::kStreamgraph;
constexpr VisKind Tm = VisKind::kTreemap;
constexpr VisKind TL = VisKind::kTimeline;
constexpr VisKind TR = VisKind::kTree;

SurveyedSystem Sys1(std::string name, int year, DT data, VT vis,
                    CapabilitySet caps) {
  SurveyedSystem s;
  s.name = std::move(name);
  s.year = year;
  s.table = 1;
  s.domain = "generic";
  s.app_type = "Web";
  s.data_types = std::move(data);
  s.vis_types = std::move(vis);
  s.caps = caps;
  return s;
}

SurveyedSystem Sys2(std::string name, int year, std::string domain,
                    std::string app, CapabilitySet caps) {
  SurveyedSystem s;
  s.name = std::move(name);
  s.year = year;
  s.table = 2;
  s.domain = std::move(domain);
  s.app_type = std::move(app);
  s.caps = caps;
  return s;
}

}  // namespace

const std::vector<SurveyedSystem>& Table1Systems() {
  // Rows exactly as in the paper's Table 1 (Generic Visualization Systems).
  static const std::vector<SurveyedSystem> kTable = {
      Sys1("Rhizomer", 2006, {N, T, S, H, G}, {Ch, M, Tm, TL},
           Caps(C::kRecommendation)),
      Sys1("VizBoard", 2009, {N, H}, {Ch, Sc, Tm},
           Caps(C::kRecommendation, C::kPreferences, C::kSampling)),
      Sys1("LODWheel", 2011, {N, S, G}, {Ch, Gr, M, P}, Caps()),
      Sys1("SemLens", 2011, {N}, {Sc}, Caps(C::kPreferences)),
      Sys1("LDVM", 2013, {S, H, G}, {B, M, Tm, TR},
           Caps(C::kRecommendation)),
      Sys1("Payola", 2013, {N, T, S, H, G}, {Ch, CI, Gr, M, Tm, TL, TR},
           Caps()),
      Sys1("LDVizWiz", 2014, {S, H, G}, {M, P, TR},
           Caps(C::kRecommendation)),
      Sys1("SynopsViz", 2014, {N, T, H}, {Ch, P, Tm, TL},
           Caps(C::kRecommendation, C::kPreferences, C::kStatistics,
                C::kAggregation, C::kIncremental, C::kDiskBased)),
      Sys1("Vis Wizard", 2014, {N, T, S}, {B, Ch, M, P, PC, SG},
           Caps(C::kRecommendation, C::kPreferences)),
      Sys1("LinkDaViz", 2015, {N, T, S}, {B, Ch, Sc, M, P},
           Caps(C::kRecommendation, C::kPreferences)),
      Sys1("ViCoMap", 2015, {N, T, S}, {M}, Caps(C::kStatistics)),
  };
  return kTable;
}

const std::vector<SurveyedSystem>& Table2Systems() {
  // Rows exactly as in the paper's Table 2 (Graph-based Visualization
  // Systems), including the ontology-visualization rows.
  static const std::vector<SurveyedSystem> kTable = {
      Sys2("RDF-Gravity", 2003, "generic", "Desktop",
           Caps(C::kKeywordSearch, C::kFilter)),
      Sys2("IsaViz", 2003, "generic", "Desktop",
           Caps(C::kKeywordSearch, C::kFilter)),
      Sys2("RDF graph visualizer", 2004, "generic", "Desktop",
           Caps(C::kKeywordSearch)),
      Sys2("GrOWL", 2007, "ontology", "Desktop",
           Caps(C::kKeywordSearch, C::kFilter, C::kSampling)),
      Sys2("NodeTrix", 2007, "ontology", "Desktop", Caps(C::kAggregation)),
      Sys2("PGV", 2007, "generic", "Desktop",
           Caps(C::kIncremental, C::kDiskBased)),
      Sys2("Fenfire", 2008, "generic", "Desktop", Caps()),
      Sys2("Gephi", 2009, "generic", "Desktop",
           Caps(C::kFilter, C::kSampling, C::kAggregation)),
      Sys2("Trisolda", 2010, "generic", "Desktop",
           Caps(C::kSampling, C::kAggregation, C::kIncremental)),
      Sys2("Cytospace", 2010, "generic", "Desktop",
           Caps(C::kKeywordSearch, C::kFilter, C::kSampling, C::kAggregation,
                C::kDiskBased)),
      Sys2("FlexViz", 2010, "ontology", "Web",
           Caps(C::kKeywordSearch, C::kFilter)),
      Sys2("RelFinder", 2010, "generic", "Web", Caps()),
      Sys2("ZoomRDF", 2010, "generic", "Desktop",
           Caps(C::kSampling, C::kAggregation, C::kIncremental)),
      Sys2("KC-Viz", 2011, "ontology", "Desktop", Caps(C::kSampling)),
      Sys2("LODWheel", 2011, "generic", "Web",
           Caps(C::kFilter, C::kAggregation)),
      Sys2("GLOW", 2012, "ontology", "Desktop",
           Caps(C::kSampling, C::kAggregation)),
      Sys2("Lodlive", 2012, "generic", "Web", Caps(C::kKeywordSearch)),
      Sys2("OntoTrix", 2013, "ontology", "Desktop",
           Caps(C::kSampling, C::kAggregation)),
      Sys2("LODeX", 2014, "generic", "Web",
           Caps(C::kSampling, C::kAggregation)),
      Sys2("VOWL 2", 2014, "ontology", "Web", Caps()),
      Sys2("graphVizdb", 2015, "generic", "Web",
           Caps(C::kKeywordSearch, C::kFilter, C::kSampling, C::kDiskBased)),
  };
  return kTable;
}

SurveyedSystem LodvizSystem(int table) {
  SurveyedSystem s;
  s.name = "lodviz (this work)";
  s.year = 2016;
  s.table = table;
  s.domain = "generic";
  s.app_type = "Library";
  s.data_types = {N, T, S, H, G};
  s.vis_types = {B, Ch, CI, Gr, M, P, PC, Sc, SG, Tm, TL, TR};
  s.caps = Caps(C::kKeywordSearch, C::kFilter, C::kSampling, C::kAggregation,
                C::kIncremental, C::kDiskBased, C::kRecommendation,
                C::kPreferences, C::kStatistics);
  return s;
}

const SurveyedSystem* FindSystem(const std::string& name) {
  for (const auto& s : Table1Systems()) {
    if (s.name == name) return &s;
  }
  for (const auto& s : Table2Systems()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace lodviz::core
