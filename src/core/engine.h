#ifndef LODVIZ_CORE_ENGINE_H_
#define LODVIZ_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>

#include "explore/facets.h"
#include "explore/keyword.h"
#include "explore/session.h"
#include "graph/graph.h"
#include "graph/supergraph.h"
#include "hier/hetree.h"
#include "rec/recommender.h"
#include "rdf/streaming.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "stats/profile.h"
#include "viz/canvas.h"
#include "viz/renderers.h"
#include "viz/svg.h"
#include "viz/types.h"
#include "workload/synthetic_lod.h"

namespace lodviz::core {

/// The outcome of rendering a visualization spec: what was drawn and how
/// crowded the raster got.
struct ViewResult {
  viz::VisSpec spec;
  viz::RenderStats render;
  uint64_t pixels_touched = 0;
  double overplot_factor = 0.0;
  double hidden_fraction = 0.0;
  /// SVG document when requested.
  std::string svg;
};

/// The lodviz facade: one object wiring the RDF store, SPARQL engine,
/// profiler, recommender, exploration services, and renderers — the
/// system Section 4 of the survey asks for, with every capability of
/// Tables 1 and 2 available behind one API.
class Engine {
 public:
  struct Options {
    int canvas_width = 800;
    int canvas_height = 600;
    /// Data-reduction budget: specs rendering more objects than this get
    /// sampled/aggregated first (0 disables reduction).
    size_t element_budget = 50000;
    uint64_t seed = 42;
  };

  Engine() : Engine(Options()) {}
  explicit Engine(Options options);

  rdf::TripleStore& store() { return store_; }
  const rdf::TripleStore& store() const { return store_; }

  // ---- data in ----
  Status LoadNTriples(std::string_view document);
  size_t LoadSynthetic(const workload::SyntheticLodOptions& options);
  size_t IngestStream(rdf::TripleSource* source, size_t batch_size);

  // ---- query & analysis ----
  Result<sparql::ResultTable> Query(std::string_view sparql_text);
  /// CONSTRUCT/DESCRIBE queries (triples out).
  Result<std::vector<rdf::ParsedTriple>> QueryGraph(
      std::string_view sparql_text);
  /// Loads a Turtle document.
  Status LoadTurtle(std::string_view document);
  /// Dataset profile (computed once, invalidated on load).
  Result<stats::DatasetProfile> Profile();
  std::vector<rec::Recommendation> Recommend(size_t top_k = 5);
  rec::Recommender& recommender() { return recommender_; }

  // ---- structures ----
  Result<hier::HETree> BuildHierarchy(const std::string& property_iri,
                                      const hier::HETree::Options& options);
  graph::Graph BuildGraph() const;
  graph::GraphHierarchy BuildGraphHierarchy(
      const graph::GraphHierarchy::Options& options) const;

  // ---- exploration services ----
  explore::FacetedBrowser MakeBrowser() const;
  const explore::KeywordIndex& Keyword();
  std::vector<explore::SearchHit> Search(const std::string& query,
                                         size_t top_k = 10);

  // ---- rendering ----
  /// Renders `spec` headlessly; set `with_svg` to also emit SVG.
  Result<ViewResult> Render(const viz::VisSpec& spec, bool with_svg = false);

  explore::SessionLog& session() { return session_; }
  const Options& options() const { return options_; }

 private:
  void InvalidateDerived();
  /// (x, y) numeric pairs per subject for two properties.
  std::vector<geo::Point> CollectPairs(const std::string& x_iri,
                                       const std::string& y_iri) const;
  std::vector<double> CollectValues(const std::string& iri) const;

  Options options_;
  rdf::TripleStore store_;
  sparql::QueryEngine query_engine_;
  rec::Recommender recommender_;
  explore::SessionLog session_;
  std::optional<stats::DatasetProfile> profile_;
  std::optional<explore::KeywordIndex> keyword_;
};

}  // namespace lodviz::core

#endif  // LODVIZ_CORE_ENGINE_H_
