#ifndef LODVIZ_CORE_ENGINE_H_
#define LODVIZ_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>

#include "explore/facets.h"
#include "explore/keyword.h"
#include "explore/session.h"
#include "graph/graph.h"
#include "graph/supergraph.h"
#include "hier/hetree.h"
#include "rec/recommender.h"
#include "rdf/streaming.h"
#include "rdf/triple_source.h"
#include "rdf/triple_store.h"
#include "serve/frontend.h"
#include "sparql/engine.h"
#include "storage/disk_source_adapter.h"
#include "storage/disk_triple_store.h"
#include "stats/profile.h"
#include "viz/canvas.h"
#include "viz/renderers.h"
#include "viz/svg.h"
#include "viz/types.h"
#include "workload/synthetic_lod.h"

namespace lodviz::core {

/// The outcome of rendering a visualization spec: what was drawn and how
/// crowded the raster got.
struct ViewResult {
  viz::VisSpec spec;
  viz::RenderStats render;
  uint64_t pixels_touched = 0;
  double overplot_factor = 0.0;
  double hidden_fraction = 0.0;
  /// SVG document when requested.
  std::string svg;
};

/// The lodviz facade: one object wiring the RDF store, SPARQL engine,
/// profiler, recommender, exploration services, and renderers — the
/// system Section 4 of the survey asks for, with every capability of
/// Tables 1 and 2 available behind one API.
class Engine {
 public:
  /// Which TripleSource queries execute against. Data always loads into
  /// the in-memory store (it owns the dictionary and feeds the non-query
  /// subsystems); with kDisk, queries run over a disk-resident mirror
  /// behind a bounded buffer pool instead — same results, bounded memory.
  enum class Backend { kMemory, kDisk };

  struct Options {
    int canvas_width = 800;
    int canvas_height = 600;
    /// Data-reduction budget: specs rendering more objects than this get
    /// sampled/aggregated first (0 disables reduction).
    size_t element_budget = 50000;
    uint64_t seed = 42;
    /// Query backend; kDisk mirrors loaded triples into a DiskTripleStore
    /// (rebuilt lazily after loads) and queries through it.
    Backend backend = Backend::kMemory;
    /// Page-file path for the disk backend (a default name in the working
    /// directory when empty).
    std::string disk_path;
    /// Buffer-pool size (pages) for the disk backend.
    size_t pool_pages = 256;
    /// Slow-query journal threshold: queries at least this slow are
    /// captured in the process-wide obs::QueryLog (fingerprint, latency,
    /// row counts, profile summary). Negative leaves the journal disabled.
    /// Note the journal is a process-wide singleton: the last-constructed
    /// Engine's setting wins.
    int64_t slow_query_us = -1;
  };

  Engine() : Engine(Options()) {}
  explicit Engine(Options options);

  rdf::TripleStore& store() { return store_; }
  const rdf::TripleStore& store() const { return store_; }

  // ---- data in ----
  Status LoadNTriples(std::string_view document);
  size_t LoadSynthetic(const workload::SyntheticLodOptions& options);
  size_t IngestStream(rdf::StreamSource* source, size_t batch_size);

  // ---- query & analysis ----
  Result<sparql::ResultTable> Query(std::string_view sparql_text);
  /// CONSTRUCT/DESCRIBE queries (triples out).
  Result<std::vector<rdf::ParsedTriple>> QueryGraph(
      std::string_view sparql_text);
  /// Renders the planner's logical plan (join order, per-pattern
  /// cardinality estimates) for the active backend without executing;
  /// the explain entry point for explore sessions and the CLI.
  Result<std::string> ExplainQuery(std::string_view sparql_text);
  /// Executes with profiling on and renders per-operator estimated vs
  /// actual rows, invocations and wall time (EXPLAIN ANALYZE); works for
  /// all query forms on either backend.
  Result<std::string> ExplainAnalyzeQuery(std::string_view sparql_text);
  /// Builds a serving Frontend (plan cache + admission control +
  /// serialization) over the active backend — the object tools/ and
  /// tests hand to serve::Server. The Frontend borrows the Engine's
  /// TripleSource, so the Engine must outlive it, and loads performed
  /// after construction are not visible through it (the serving layer
  /// assumes an immutable snapshot, like sparql::QueryEngine itself).
  Result<std::unique_ptr<serve::Frontend>> MakeFrontend(
      const serve::FrontendOptions& frontend_options =
          serve::FrontendOptions());
  /// JSON dump of the process-wide slow-query journal (see
  /// obs::QueryLog::ToJson); entries accumulate once Options::slow_query_us
  /// is non-negative.
  std::string SlowQueryLogJson() const;
  /// Loads a Turtle document.
  Status LoadTurtle(std::string_view document);
  /// Dataset profile (computed once, invalidated on load).
  Result<stats::DatasetProfile> Profile();
  std::vector<rec::Recommendation> Recommend(size_t top_k = 5);
  rec::Recommender& recommender() { return recommender_; }

  // ---- structures ----
  Result<hier::HETree> BuildHierarchy(const std::string& property_iri,
                                      const hier::HETree::Options& options);
  graph::Graph BuildGraph() const;
  graph::GraphHierarchy BuildGraphHierarchy(
      const graph::GraphHierarchy::Options& options) const;

  // ---- exploration services ----
  explore::FacetedBrowser MakeBrowser() const;
  const explore::KeywordIndex& Keyword();
  std::vector<explore::SearchHit> Search(const std::string& query,
                                         size_t top_k = 10);

  // ---- rendering ----
  /// Renders `spec` headlessly; set `with_svg` to also emit SVG.
  Result<ViewResult> Render(const viz::VisSpec& spec, bool with_svg = false);

  explore::SessionLog& session() { return session_; }
  const Options& options() const { return options_; }

 private:
  void InvalidateDerived();
  /// The TripleSource queries run against: the in-memory store, or the
  /// (lazily rebuilt) disk mirror for Backend::kDisk.
  Result<const rdf::TripleSource*> ActiveSource();
  /// Rebuilds the disk mirror from the in-memory store (compacts first so
  /// both backends hold identical deduplicated data — the parity
  /// contract).
  Status RebuildDiskMirror();
  /// (x, y) numeric pairs per subject for two properties.
  std::vector<geo::Point> CollectPairs(const std::string& x_iri,
                                       const std::string& y_iri) const;
  std::vector<double> CollectValues(const std::string& iri) const;

  Options options_;
  rdf::TripleStore store_;
  rec::Recommender recommender_;
  explore::SessionLog session_;
  std::optional<stats::DatasetProfile> profile_;
  std::optional<explore::KeywordIndex> keyword_;

  /// Disk backend state (Backend::kDisk only).
  std::unique_ptr<storage::DiskTripleStore> disk_store_;
  std::unique_ptr<storage::DiskSourceAdapter> disk_source_;
  bool disk_dirty_ = true;
};

}  // namespace lodviz::core

#endif  // LODVIZ_CORE_ENGINE_H_
