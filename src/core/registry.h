#ifndef LODVIZ_CORE_REGISTRY_H_
#define LODVIZ_CORE_REGISTRY_H_

#include <string>
#include <vector>

#include "core/capabilities.h"
#include "viz/types.h"

namespace lodviz::core {

/// One row of the survey's comparison tables: a surveyed system modeled
/// as a profile of data types, visualization types, and capabilities.
struct SurveyedSystem {
  std::string name;
  int year = 0;
  /// 1 = generic visualization systems, 2 = graph-based systems.
  int table = 0;
  std::string domain;    // "generic" / "ontology"
  std::string app_type;  // "Web" / "Desktop"
  std::vector<viz::DataType> data_types;  // Table 1 only
  std::vector<viz::VisKind> vis_types;    // Table 1 only
  CapabilitySet caps = kNoCapabilities;
};

/// The 11 rows of Table 1 (generic visualization systems), as published.
const std::vector<SurveyedSystem>& Table1Systems();

/// The 21 rows of Table 2 (graph-based visualization systems), as
/// published.
const std::vector<SurveyedSystem>& Table2Systems();

/// lodviz itself as a row (for the "this work" line the benches append):
/// all capability columns on.
SurveyedSystem LodvizSystem(int table);

/// Find a system by name; nullptr if absent.
const SurveyedSystem* FindSystem(const std::string& name);

}  // namespace lodviz::core

#endif  // LODVIZ_CORE_REGISTRY_H_
