#include "core/archetype.h"

#include <cstdio>
#include <unistd.h>

#include "explore/progressive.h"
#include "hier/hetree.h"
#include "sparql/engine.h"
#include "stats/sampler.h"
#include "storage/disk_source_adapter.h"
#include "storage/disk_triple_store.h"
#include "workload/synthetic_lod.h"

namespace lodviz::core {

ArchetypeAdapter::ArchetypeAdapter(const SurveyedSystem& system,
                                   Engine* engine)
    : system_(system), engine_(engine) {}

Result<ProbeResult> ArchetypeAdapter::Probe(Capability capability) {
  ProbeResult result;
  result.capability = capability;
  if (!HasCapability(system_.caps, capability)) {
    return Status::Unimplemented(system_.name + " does not support " +
                                 std::string(CapabilityName(capability)));
  }
  Result<uint64_t> evidence = Status::Internal("probe not run");
  switch (capability) {
    case Capability::kKeywordSearch:
      evidence = RunKeywordSearch();
      break;
    case Capability::kFilter:
      evidence = RunFilter();
      break;
    case Capability::kSampling:
      evidence = RunSampling();
      break;
    case Capability::kAggregation:
      evidence = RunAggregation();
      break;
    case Capability::kIncremental:
      evidence = RunIncremental();
      break;
    case Capability::kDiskBased:
      evidence = RunDiskBased();
      break;
    case Capability::kRecommendation:
      evidence = RunRecommendation();
      break;
    case Capability::kPreferences:
      evidence = RunPreferences();
      break;
    case Capability::kStatistics:
      evidence = RunStatistics();
      break;
  }
  if (!evidence.ok()) return evidence.status();
  result.executed = true;
  result.evidence = evidence.ValueOrDie();
  return result;
}

std::vector<ProbeResult> ArchetypeAdapter::ProbeAll() {
  std::vector<ProbeResult> results;
  for (Capability cap : AllCapabilities()) {
    Result<ProbeResult> r = Probe(cap);
    if (r.ok()) {
      results.push_back(r.ValueOrDie());
    } else {
      results.push_back({cap, /*executed=*/false, 0});
    }
  }
  return results;
}

Result<uint64_t> ArchetypeAdapter::RunKeywordSearch() {
  std::vector<explore::SearchHit> hits = engine_->Search("ancient", 10);
  if (hits.empty()) return Status::NotFound("keyword probe found nothing");
  return hits.size();
}

Result<uint64_t> ArchetypeAdapter::RunFilter() {
  // A FILTERed SPARQL query: real filtering machinery.
  LODVIZ_ASSIGN_OR_RETURN(
      sparql::ResultTable table,
      engine_->Query("SELECT ?s WHERE { ?s <" +
                     std::string(workload::lod::kAge) +
                     "> ?a . FILTER(?a > 50) } LIMIT 25"));
  return table.num_rows();
}

Result<uint64_t> ArchetypeAdapter::RunSampling() {
  stats::ReservoirSampler<rdf::Triple> sampler(100, 7);
  engine_->store().Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    sampler.Add(t);
    return true;
  });
  if (sampler.sample().empty()) return Status::NotFound("nothing to sample");
  return sampler.sample().size();
}

Result<uint64_t> ArchetypeAdapter::RunAggregation() {
  hier::HETree::Options opts;
  opts.lazy = true;
  LODVIZ_ASSIGN_OR_RETURN(
      hier::HETree tree,
      engine_->BuildHierarchy(workload::lod::kAge, opts));
  return tree.Children(tree.root()).size();
}

Result<uint64_t> ArchetypeAdapter::RunIncremental() {
  std::vector<double> values;
  engine_->store().Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    Result<double> v = engine_->store().dict().term(t.o).AsDouble();
    if (v.ok()) values.push_back(v.ValueOrDie());
    return true;
  });
  if (values.size() < 100) return Status::NotFound("too few numeric values");
  std::vector<explore::ProgressiveEstimate> trajectory =
      explore::RunProgressive(values, values.size() / 20, 0.05, 3);
  return trajectory.size();
}

Result<uint64_t> ArchetypeAdapter::RunDiskBased() {
  // Mirror the store to disk and run the same SPARQL query against both
  // backends through the shared TripleSource contract: the disk-based
  // archetype is only satisfied if out-of-core execution returns the
  // identical result table.
  std::string path = "/tmp/lodviz_archetype_" + std::to_string(::getpid()) +
                     ".db";
  rdf::TripleStore& store = engine_->store();
  store.Compact();
  std::vector<rdf::Triple> triples;
  store.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    triples.push_back(t);
    return true;
  });
  LODVIZ_ASSIGN_OR_RETURN(std::unique_ptr<storage::DiskTripleStore> disk,
                          storage::DiskTripleStore::Create(path, 32));
  Status loaded = disk->BulkLoad(triples);
  if (!loaded.ok()) {
    std::remove(path.c_str());
    return loaded;
  }
  storage::DiskSourceAdapter adapter(disk.get(), &store.dict());

  constexpr std::string_view kProbe =
      "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 200";
  sparql::QueryEngine mem_engine(&store);
  sparql::QueryEngine disk_engine(&adapter);
  Result<sparql::ResultTable> mem_rows = mem_engine.ExecuteString(kProbe);
  Result<sparql::ResultTable> disk_rows = disk_engine.ExecuteString(kProbe);
  std::remove(path.c_str());
  if (!mem_rows.ok()) return mem_rows.status();
  if (!disk_rows.ok()) return disk_rows.status();
  const sparql::ResultTable& mem_table = mem_rows.ValueOrDie();
  const sparql::ResultTable& disk_table = disk_rows.ValueOrDie();
  if (mem_table.ToString(mem_table.num_rows()) !=
      disk_table.ToString(disk_table.num_rows())) {
    return Status::Internal("disk backend diverged from memory backend");
  }
  if (disk_table.num_rows() == 0) {
    return Status::NotFound("disk store is empty");
  }
  return disk_table.num_rows();
}

Result<uint64_t> ArchetypeAdapter::RunRecommendation() {
  std::vector<rec::Recommendation> recs = engine_->Recommend(5);
  if (recs.empty()) return Status::NotFound("no recommendations produced");
  return recs.size();
}

Result<uint64_t> ArchetypeAdapter::RunPreferences() {
  // Preferences must actually change the ranking.
  std::vector<rec::Recommendation> before = engine_->Recommend(3);
  if (before.empty()) return Status::NotFound("no recommendations");
  viz::VisKind demoted = before.front().spec.kind;
  rec::Recommender& recommender = engine_->recommender();
  double saved = recommender.preference(demoted);
  recommender.SetPreference(demoted, 0.25);
  std::vector<rec::Recommendation> after = engine_->Recommend(3);
  recommender.SetPreference(demoted, saved);
  if (after.empty()) return Status::NotFound("no recommendations after");
  if (after.front().spec.kind == demoted && after.size() > 1) {
    return Status::Internal("preference had no effect on ranking");
  }
  return after.size();
}

Result<uint64_t> ArchetypeAdapter::RunStatistics() {
  LODVIZ_ASSIGN_OR_RETURN(stats::DatasetProfile profile, engine_->Profile());
  if (profile.properties.empty()) return Status::NotFound("empty profile");
  return profile.properties.size();
}

}  // namespace lodviz::core
