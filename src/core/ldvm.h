#ifndef LODVIZ_CORE_LDVM_H_
#define LODVIZ_CORE_LDVM_H_

#include <functional>
#include <string>
#include <vector>

#include "core/engine.h"

namespace lodviz::core {

/// The Linked Data Visualization Model [29]: a four-stage pipeline
///   Source data -> Analytical abstraction -> Visualization abstraction
///   -> View
/// where each stage is replaceable, so different datasets connect to
/// different visualizations dynamically. lodviz's default stages are the
/// profiler, the recommender, and the headless renderer; callers override
/// any stage with their own function.
class LdvmPipeline {
 public:
  /// Stage 2: dataset -> analytical abstraction (profile).
  using AnalyticalStage =
      std::function<Result<stats::DatasetProfile>(Engine&)>;
  /// Stage 3: profile -> visualization abstraction (a spec).
  using VisualStage = std::function<Result<viz::VisSpec>(
      Engine&, const stats::DatasetProfile&)>;
  /// Stage 4: spec -> view.
  using ViewStage =
      std::function<Result<ViewResult>(Engine&, const viz::VisSpec&)>;

  /// A pipeline with the default stages over `engine` (not owned).
  explicit LdvmPipeline(Engine* engine);

  LdvmPipeline& WithAnalyticalStage(AnalyticalStage stage);
  LdvmPipeline& WithVisualStage(VisualStage stage);
  LdvmPipeline& WithViewStage(ViewStage stage);

  /// Runs all four stages (stage 1, the source, is the engine's store).
  Result<ViewResult> Run();

  /// Stage outputs of the last Run (for inspection / tests).
  const stats::DatasetProfile& last_profile() const { return profile_; }
  const viz::VisSpec& last_spec() const { return spec_; }

 private:
  Engine* engine_;
  AnalyticalStage analytical_;
  VisualStage visual_;
  ViewStage view_;
  stats::DatasetProfile profile_;
  viz::VisSpec spec_;
};

}  // namespace lodviz::core

#endif  // LODVIZ_CORE_LDVM_H_
