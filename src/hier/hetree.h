#ifndef LODVIZ_HIER_HETREE_H_
#define LODVIZ_HIER_HETREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"

namespace lodviz::hier {

/// Exact statistics of a tree node's value range.
struct NodeStats {
  uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double mean = 0.0;
  double variance = 0.0;
};

/// One (value, object) item: e.g. (age value, person term id).
struct Item {
  double value = 0.0;
  uint64_t object = 0;
};

/// HETree [25, 26]: the hierarchical aggregation model behind SynopsViz —
/// a balanced tree over one numeric/temporal property where each node
/// summarizes a value range with exact statistics, enabling multilevel
/// visual exploration (overview first, zoom/drill on demand) of datasets
/// far larger than the screen.
///
/// Two constructions:
///  - HETree-C (content-based): leaves hold equal numbers of objects;
///    good for skewed data (equi-depth semantics).
///  - HETree-R (range-based): each level splits the value range into
///    equal sub-ranges (equi-width semantics); good for uniform axes.
///
/// Incremental construction (ICO): nodes materialize lazily as the user
/// drills down, so the cost of "show me the overview, then zoom twice" is
/// O(n + visited) after one sort, not a full-tree build.
///
/// Adaptation (ADA): Adapt() re-parameterizes (kind/fanout/leaf size)
/// reusing the sorted item array and prefix sums — no re-sort, no re-scan.
class HETree {
 public:
  enum class Kind { kContent, kRange };

  struct Options {
    Kind kind = Kind::kContent;
    /// Children per internal node.
    size_t fanout = 4;
    /// Max items in a leaf.
    size_t leaf_capacity = 32;
    /// false = fully materialize at build; true = ICO lazy materialization.
    bool lazy = false;
  };

  using NodeId = uint32_t;
  static constexpr NodeId kNoNode = ~NodeId(0);

  struct Node {
    double lo = 0.0;           ///< value range [lo, hi]
    double hi = 0.0;
    size_t first = 0;          ///< item index range [first, last)
    size_t last = 0;
    NodeStats stats;
    bool is_leaf = false;
    bool children_materialized = false;
    std::vector<NodeId> children;
    NodeId parent = kNoNode;
    uint32_t depth = 0;
  };

  /// Builds over `items` (sorted internally). Items must be non-empty.
  static Result<HETree> Build(std::vector<Item> items, const Options& options);

  /// Builds over the numeric (or temporal, as epoch seconds) objects of
  /// `predicate`, with subjects as item objects.
  static Result<HETree> BuildFromProperty(const rdf::TripleStore& store,
                                          rdf::TermId predicate,
                                          const Options& options);

  NodeId root() const { return 0; }
  const Node& node(NodeId id) const { return nodes_[id]; }
  const Options& options() const { return options_; }
  size_t num_items() const { return data_->items.size(); }

  /// Children of `id`, materializing them first if this is a lazy tree
  /// (the ICO "user drills down" operation).
  const std::vector<NodeId>& Children(NodeId id);

  /// Number of nodes materialized so far (ICO cost metric).
  size_t materialized_nodes() const { return nodes_.size(); }

  /// All nodes of a given depth (materializes down to that depth).
  std::vector<NodeId> NodesAtDepth(uint32_t depth);

  /// Exact statistics over the value interval [lo, hi], computed from
  /// prefix sums in O(log n) — independent of materialization state.
  [[nodiscard]] NodeStats RangeStats(double lo, double hi) const;

  /// Items of a leaf (drill-to-detail).
  [[nodiscard]] std::vector<Item> LeafItems(NodeId id) const;

  /// ADA: re-parameterize, sharing the sorted data (no re-sort). The
  /// returned tree is lazy regardless of `new_options.lazy` until nodes
  /// are visited, which is what makes adaptation cheap.
  HETree Adapt(const Options& new_options) const;

  size_t MemoryUsage() const;

 private:
  /// Sorted items + prefix aggregates, shared across adaptations.
  struct SortedData {
    std::vector<Item> items;       // ascending by value
    std::vector<double> prefix_sum;    // size n+1
    std::vector<double> prefix_sumsq;  // size n+1
  };

  HETree(std::shared_ptr<const SortedData> data, const Options& options);

  NodeStats StatsForItemRange(size_t first, size_t last) const;
  size_t LowerBound(double value) const;  // first index with value >= v
  size_t UpperBound(double value) const;  // first index with value > v
  /// Pure split of `parent` into child nodes (no tree mutation); safe to
  /// call concurrently for distinct nodes of one level.
  [[nodiscard]] std::vector<Node> ComputeChildren(const Node& parent) const;
  /// Appends `children` for node `id` and links them in.
  void AttachChildren(NodeId id, std::vector<Node> children);
  void MaterializeChildren(NodeId id);
  void MaterializeAll();

  std::shared_ptr<const SortedData> data_;
  Options options_;
  std::vector<Node> nodes_;
};

}  // namespace lodviz::hier

#endif  // LODVIZ_HIER_HETREE_H_
