#include "hier/hetree.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lodviz::hier {

HETree::HETree(std::shared_ptr<const SortedData> data, const Options& options)
    : data_(std::move(data)), options_(options) {
  // Root covers everything.
  Node root;
  root.first = 0;
  root.last = data_->items.size();
  root.lo = data_->items.front().value;
  root.hi = data_->items.back().value;
  root.stats = StatsForItemRange(root.first, root.last);
  root.is_leaf = root.last - root.first <= options_.leaf_capacity;
  root.depth = 0;
  nodes_.push_back(std::move(root));
}

Result<HETree> HETree::Build(std::vector<Item> items, const Options& options) {
  LODVIZ_TRACE_SPAN("hier.hetree.build");
  static obs::Counter* builds =
      &obs::MetricRegistry::Global().GetCounter("hier.hetree.builds");
  static obs::Counter* items_indexed =
      &obs::MetricRegistry::Global().GetCounter("hier.hetree.items_indexed");
  static obs::Histogram* build_us =
      &obs::MetricRegistry::Global().GetHistogram("hier.hetree.build_us");
  builds->Increment();
  items_indexed->Increment(items.size());
  Stopwatch sw;
  struct BuildFold {
    obs::Histogram* build_us;
    const Stopwatch& sw;
    ~BuildFold() { build_us->RecordDouble(sw.ElapsedMicros()); }
  } fold{build_us, sw};
  if (items.empty()) return Status::InvalidArgument("HETree needs items");
  if (options.fanout < 2) return Status::InvalidArgument("fanout must be >= 2");
  if (options.leaf_capacity < 1) {
    return Status::InvalidArgument("leaf_capacity must be >= 1");
  }
  auto data = std::make_shared<SortedData>();
  // Serial mode (LODVIZ_THREADS=1) degrades to plain std::sort, so tie
  // order — and therefore every downstream structure — matches the
  // pre-exec serial build bit for bit.
  exec::ParallelSort(items.begin(), items.end(),
                     [](const Item& a, const Item& b) {
                       return a.value < b.value;
                     });
  size_t n = items.size();
  data->items = std::move(items);
  data->prefix_sum.resize(n + 1, 0.0);
  data->prefix_sumsq.resize(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double v = data->items[i].value;
    data->prefix_sum[i + 1] = data->prefix_sum[i] + v;
    data->prefix_sumsq[i + 1] = data->prefix_sumsq[i] + v * v;
  }
  HETree tree(std::move(data), options);
  if (!options.lazy) tree.MaterializeAll();
  return tree;
}

Result<HETree> HETree::BuildFromProperty(const rdf::TripleStore& store,
                                         rdf::TermId predicate,
                                         const Options& options) {
  LODVIZ_TRACE_SPAN("hier.hetree.build_from_property");
  std::vector<Item> items;
  const rdf::Dictionary& dict = store.dict();
  rdf::TriplePattern pat(rdf::kInvalidTermId, predicate, rdf::kInvalidTermId);
  store.Scan(pat, [&](const rdf::Triple& t) {
    const rdf::Term& obj = dict.term(t.o);
    double value = 0.0;
    if (obj.IsTemporalLiteral()) {
      Result<int64_t> v = obj.AsEpochSeconds();
      if (!v.ok()) return true;
      value = static_cast<double>(v.ValueOrDie());
    } else {
      Result<double> v = obj.AsDouble();
      if (!v.ok()) return true;
      value = v.ValueOrDie();
    }
    items.push_back({value, t.s});
    return true;
  });
  if (items.empty()) {
    return Status::NotFound("predicate has no numeric/temporal objects");
  }
  return Build(std::move(items), options);
}

NodeStats HETree::StatsForItemRange(size_t first, size_t last) const {
  NodeStats s;
  if (last <= first) return s;
  s.count = last - first;
  s.min = data_->items[first].value;
  s.max = data_->items[last - 1].value;
  s.sum = data_->prefix_sum[last] - data_->prefix_sum[first];
  double sumsq = data_->prefix_sumsq[last] - data_->prefix_sumsq[first];
  double n = static_cast<double>(s.count);
  s.mean = s.sum / n;
  s.variance = std::max(0.0, sumsq / n - s.mean * s.mean);
  return s;
}

size_t HETree::LowerBound(double value) const {
  auto it = std::lower_bound(
      data_->items.begin(), data_->items.end(), value,
      [](const Item& item, double v) { return item.value < v; });
  return static_cast<size_t>(it - data_->items.begin());
}

size_t HETree::UpperBound(double value) const {
  auto it = std::upper_bound(
      data_->items.begin(), data_->items.end(), value,
      [](double v, const Item& item) { return v < item.value; });
  return static_cast<size_t>(it - data_->items.begin());
}

std::vector<HETree::Node> HETree::ComputeChildren(const Node& parent) const {
  size_t first = parent.first, last = parent.last;
  size_t count = last - first;
  std::vector<std::pair<size_t, size_t>> ranges;  // item ranges
  std::vector<std::pair<double, double>> bounds;  // value ranges

  if (options_.kind == Kind::kContent) {
    // Equal item counts per child.
    size_t k = std::min(options_.fanout, count);
    for (size_t c = 0; c < k; ++c) {
      size_t b = first + c * count / k;
      size_t e = first + (c + 1) * count / k;
      if (e <= b) continue;
      ranges.emplace_back(b, e);
      bounds.emplace_back(data_->items[b].value, data_->items[e - 1].value);
    }
  } else {
    // Equal value sub-ranges; empty sub-ranges are skipped.
    double lo = parent.lo, hi = parent.hi;
    if (hi <= lo) {
      // Degenerate single-value range: fall back to content split so the
      // tree still terminates.
      size_t k = std::min(options_.fanout, count);
      for (size_t c = 0; c < k; ++c) {
        size_t b = first + c * count / k;
        size_t e = first + (c + 1) * count / k;
        if (e > b) {
          ranges.emplace_back(b, e);
          bounds.emplace_back(data_->items[b].value, data_->items[e - 1].value);
        }
      }
    } else {
      double width = (hi - lo) / static_cast<double>(options_.fanout);
      size_t prev = first;
      for (size_t c = 0; c < options_.fanout; ++c) {
        double chi = (c + 1 == options_.fanout) ? hi : lo + width * (c + 1);
        size_t e = (c + 1 == options_.fanout) ? last : UpperBound(chi);
        e = std::min(e, last);
        if (e > prev) {
          ranges.emplace_back(prev, e);
          bounds.emplace_back(lo + width * c, chi);
        }
        prev = std::max(prev, e);
      }
    }
  }

  std::vector<Node> children;
  children.reserve(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    Node child;
    child.first = ranges[i].first;
    child.last = ranges[i].second;
    child.lo = bounds[i].first;
    child.hi = bounds[i].second;
    child.stats = StatsForItemRange(child.first, child.last);
    child.is_leaf = (child.last - child.first) <= options_.leaf_capacity ||
                    ranges.size() <= 1;
    child.depth = parent.depth + 1;
    children.push_back(std::move(child));
  }
  return children;
}

void HETree::AttachChildren(NodeId id, std::vector<Node> children) {
  std::vector<NodeId> child_ids;
  child_ids.reserve(children.size());
  for (Node& child : children) {
    child.parent = id;
    child_ids.push_back(static_cast<NodeId>(nodes_.size()));
    nodes_.push_back(std::move(child));
  }
  Node& parent = nodes_[id];  // re-fetch (vector may have grown)
  parent.children = std::move(child_ids);
  parent.children_materialized = true;
}

void HETree::MaterializeChildren(NodeId id) {
  const Node& parent = nodes_[id];
  if (parent.children_materialized || parent.is_leaf) return;
  AttachChildren(id, ComputeChildren(parent));
}

const std::vector<HETree::NodeId>& HETree::Children(NodeId id) {
  LODVIZ_DCHECK(id < nodes_.size()) << "node id" << id << "out of range";
  MaterializeChildren(id);
  return nodes_[id].children;
}

void HETree::MaterializeAll() {
  // BFS materialization of the entire tree.
  for (size_t i = 0; i < nodes_.size(); ++i) {
    MaterializeChildren(static_cast<NodeId>(i));
  }
}

std::vector<HETree::NodeId> HETree::NodesAtDepth(uint32_t depth) {
  std::vector<NodeId> frontier = {root()};
  for (uint32_t d = 0; d < depth; ++d) {
    std::vector<NodeId> next;
    for (NodeId id : frontier) {
      if (nodes_[id].is_leaf) {
        next.push_back(id);  // leaves stay visible below their depth
      } else {
        for (NodeId c : Children(id)) next.push_back(c);
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

NodeStats HETree::RangeStats(double lo, double hi) const {
  if (hi < lo) return {};
  size_t first = LowerBound(lo);
  size_t last = UpperBound(hi);
  return StatsForItemRange(first, last);
}

std::vector<Item> HETree::LeafItems(NodeId id) const {
  const Node& n = nodes_[id];
  return std::vector<Item>(data_->items.begin() + n.first,
                           data_->items.begin() + n.last);
}

HETree HETree::Adapt(const Options& new_options) const {
  LODVIZ_CHECK(new_options.fanout >= 2);
  LODVIZ_CHECK(new_options.leaf_capacity >= 1);
  return HETree(data_, new_options);
}

size_t HETree::MemoryUsage() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) bytes += n.children.capacity() * sizeof(NodeId);
  bytes += data_->items.capacity() * sizeof(Item) +
           data_->prefix_sum.capacity() * sizeof(double) * 2;
  return bytes;
}

}  // namespace lodviz::hier
